// Serving sessions: a uniform run(lane, in, out) interface over the dl
// models (MLP stack, BERT encoder, block-sparse FC, LLM decoder, ResNet-50)
// so the request scheduler can multiplex heterogeneous traffic onto the one
// process-wide thread pool.
//
// Lanes. The dl models keep mutable scratch (staging panels, saved
// activations, KV caches) inside the model object, so one instance cannot
// serve two requests concurrently. A session therefore owns `lanes`
// independent replicas, every one constructed from the same RNG seed:
// identical weights, identical plans, identical kernel-cache entries. Any
// lane produces bitwise-identical output for the same input, which is what
// lets the scheduler prove batched == sequential execution byte for byte.
//
// Construction is the expensive, once-per-model step: it packs weights,
// builds every LoopNest plan and resolves the kernel-cache entries (a
// warmup request runs through each lane), so steady-state serving touches
// only cached plans and compiled kernels — the paper's near-zero-overhead
// dispatch story lifted from per-nest to per-request.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dl/bert.hpp"
#include "dl/llm.hpp"
#include "dl/resnet.hpp"
#include "dl/sparse_fc.hpp"

namespace plt::serving {

// Priority class carried by every request (serving/scheduler.hpp Request).
// On a shard, a ready kLatency batch always flushes before a ready
// kThroughput batch — a formed-but-unflushed throughput batch can be
// overtaken between regions (never mid-region, so determinism is untouched).
// kSessionDefault resolves to Session::default_class() at submit time.
enum class RequestClass : int {
  kLatency = 0,
  kThroughput = 1,
  kSessionDefault = 2,
};

inline const char* request_class_name(RequestClass c) {
  switch (c) {
    case RequestClass::kLatency: return "latency";
    case RequestClass::kThroughput: return "throughput";
    case RequestClass::kSessionDefault: return "session-default";
  }
  return "?";
}

class Session {
 public:
  virtual ~Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& name() const { return name_; }
  int lanes() const { return lanes_; }
  std::int64_t input_elems() const { return input_elems_; }
  std::int64_t output_elems() const { return output_elems_; }
  double flops_per_request() const { return flops_; }

  // Pool partition this session's weights/scratch live on; -1 = unpinned.
  // The sharded scheduler routes the session's batches to this partition.
  int partition() const { return partition_.load(std::memory_order_acquire); }

  // Pins the session to pool partition p (normalized modulo the pool's
  // partition count, so partition() always names a real sub-team). With
  // first_touch (the default and the ModelRegistry behaviour), a warmup
  // pass re-runs on that partition's sub-team, so lazily-built state —
  // per-token-count plans, decode scratch, flat schedules, JITed kernels —
  // is allocated and first-touched by the threads that will serve the
  // session's traffic (first-touch NUMA policy places those pages on the
  // partition's node). Idempotent per target.
  void pin_partition(int p, bool first_touch = true);

  // Pins to p only if still unpinned; returns the resulting partition. Used
  // by the scheduler on first submit (cheap: no warmup on the submit path).
  // Unlike pin_partition, p is stored raw — under non-pool runtimes it acts
  // as a shard-routing hint beyond the (single) real partition.
  int pin_partition_if_unpinned(int p);

  // Serializes batch execution on this session: a dispatcher that stole the
  // session's requests must not run its lanes concurrently with the home
  // dispatcher. Uncontended in steady state (one home dispatcher).
  std::mutex& exec_mutex() { return exec_mu_; }

  // Health / quarantine. A session whose batch execution threw is marked
  // unhealthy by the scheduler (first failure wins for the reason); with
  // quarantine enabled the scheduler then rejects new submits kUnavailable
  // while every other session keeps serving. mark_healthy() re-admits it
  // (operator action — the lanes themselves are stateless across requests).
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }
  void mark_unhealthy(const std::string& reason);
  void mark_healthy();
  std::string health_reason() const;

  // Default priority class for requests submitted kSessionDefault. LLM
  // sessions default kLatency (decode tail latency is the product metric);
  // every other model family defaults kThroughput.
  RequestClass default_class() const {
    return static_cast<RequestClass>(
        default_class_.load(std::memory_order_acquire));
  }
  void set_default_class(RequestClass cls);

  // Runs one request on the given lane. Distinct lanes are safe to run
  // concurrently; the same lane must not be entered twice at once. Called
  // by the scheduler from inside a pool region (nested nests degrade to a
  // serial walk) and by clients directly for sequential reference runs.
  virtual void run(int lane, const float* in, float* out) = 0;

  // --- continuous batching (stepped execution) ------------------------------
  //
  // A steppable session splits run() into step_count(tokens_per_step)
  // resumable calls: for the LLM family, step 0 prefills the prompt into the
  // lane's KV cache and decodes the first `tokens_per_step` tokens; every
  // later step decodes the next `tokens_per_step` tokens against the SAME
  // lane's live cache. The lane is therefore the request's decode state: a
  // stepped request holds one lane exclusively (acquire_lane/release_lane)
  // across all of its steps, and the step sequence on one lane is bitwise-
  // identical to one monolithic run() — the dispatcher only interleaves
  // *other requests' lanes* between token boundaries.
  virtual bool steppable() const { return false; }
  // Number of resumable steps for the given granularity; 1 = monolithic
  // (tokens_per_step <= 0 always means "execute as one run()").
  virtual int step_count(int tokens_per_step) const {
    (void)tokens_per_step;
    return 1;
  }
  // Runs step `step` (0-based, < step_count(tokens_per_step)) of one request
  // on the request's sticky lane. The default forwards step 0 to run().
  virtual void run_step(int lane, const float* in, float* out, int step,
                        int tokens_per_step);

  // Lane ownership for stepped requests. acquire_lane returns an exclusive
  // lane index (-1 when every lane is held by an in-flight request — the
  // caller retries after a completion frees one); release_lane returns it.
  // Thread-safe: dispatchers on distinct shards acquire concurrently.
  int acquire_lane();
  void release_lane(int lane);

 protected:
  Session(std::string name, int lanes, std::int64_t input_elems,
          std::int64_t output_elems, double flops)
      : name_(std::move(name)),
        lanes_(lanes < 1 ? 1 : lanes),
        input_elems_(input_elems),
        output_elems_(output_elems),
        flops_(flops) {}

  // Runs one synthetic request through every lane so plans, flat schedules
  // and JITed kernels are resolved before the first real request arrives.
  void warmup();

  // For sessions whose flop count is only known after the model is built.
  void set_flops(double f) { flops_ = f; }

 private:
  std::string name_;
  int lanes_;
  std::int64_t input_elems_;
  std::int64_t output_elems_;
  double flops_;
  std::atomic<int> partition_{-1};
  std::mutex exec_mu_;
  std::atomic<bool> healthy_{true};
  mutable std::mutex health_mu_;  // guards health_reason_
  std::string health_reason_;
  std::atomic<int> default_class_{static_cast<int>(RequestClass::kThroughput)};
  std::mutex lane_mu_;           // guards lane_busy_
  std::vector<char> lane_busy_;  // sized lazily to lanes() on first acquire
};

// Stack of `layers` fully-connected layers, all `features` wide, over
// `tokens` rows (the Fig. 3 MLP shape, served per request).
struct MlpServeConfig {
  std::int64_t features = 128;
  std::int64_t layers = 2;
  std::int64_t tokens = 32;
  std::int64_t bm = 32, bn = 32, bk = 32;  // must divide features
  DType dtype = DType::F32;
  std::string loop_spec = "BCa";
};
std::shared_ptr<Session> make_mlp_session(const std::string& name,
                                          const MlpServeConfig& cfg, int lanes,
                                          std::uint64_t seed);

// BERT encoder inference: in/out are [tokens][hidden]. dropout is forced to
// 0 (inference), so forward consumes no RNG and stays deterministic.
std::shared_ptr<Session> make_bert_session(const std::string& name,
                                           dl::BertConfig cfg, int lanes,
                                           std::uint64_t seed);

// Single block-sparse FC layer (the Fig. 10 inference building block):
// in [tokens][in_features] -> out [tokens][out_features].
std::shared_ptr<Session> make_sparse_fc_session(const std::string& name,
                                                const dl::SparseFcConfig& cfg,
                                                int lanes, std::uint64_t seed);

// LLM request: prefill `prompt_len` embedding rows, then autoregressively
// decode `gen_tokens` steps (each step feeds back the previous output, as in
// LlmModel::generate). in: [prompt_len][hidden]; out: [gen_tokens][hidden]
// (the decoded embeddings). Per-lane KV caches are fully overwritten by each
// request, so sessions are stateless across requests. The session is
// steppable (continuous batching: one prefill step, then one decode region
// per PLT_SERVE_DECODE_STEP_TOKENS generated tokens) and defaults its
// requests to RequestClass::kLatency.
std::shared_ptr<Session> make_llm_session(const std::string& name,
                                          dl::LlmConfig cfg,
                                          std::int64_t prompt_len,
                                          std::int64_t gen_tokens, int lanes,
                                          std::uint64_t seed);

// ResNet-50 classification: in NCHW [N][3][image][image] -> out [N][1000].
std::shared_ptr<Session> make_resnet_session(const std::string& name,
                                             const dl::ResNetConfig& cfg,
                                             int lanes, std::uint64_t seed);

}  // namespace plt::serving
