// Micro-batching request scheduler: the serving layer's core. Producer
// threads submit typed Request values into a lock-free MPMC admission
// queue; a dispatcher thread drains it, groups compatible requests (same
// session => same model/shape/dtype by construction) and flushes a group as
// one batch when it reaches PLT_SERVE_MAX_BATCH requests or its oldest
// request has waited PLT_SERVE_BATCH_USECS microseconds.
//
// Priority classes. Every request carries a RequestClass (kLatency |
// kThroughput; kSessionDefault resolves to the session's default at submit).
// Each shard keeps one pending map PER CLASS and flushes ready groups in
// (class, earliest-request-deadline, age) order: a ready latency batch
// always flushes before a ready throughput batch, and the queue is
// re-drained between flushes, so a throughput batch that has formed but not
// yet flushed can be overtaken by newly arrived latency work. Preemption is
// only ever BETWEEN regions — a running batch always completes — so the
// worst-case latency-class delay is one in-flight region, and the bitwise
// determinism invariant is untouched. PLT_SERVE_PRIORITY=0 restores strict
// class-blind FIFO grouping.
//
// Continuous batching. A steppable session (the LLM family) executes as
// step_count() resumable regions instead of one monolithic run(): step 0
// prefills into the request's exclusively-held lane, every later step
// decodes PLT_SERVE_DECODE_STEP_TOKENS tokens against that lane's live KV
// cache. After every step the dispatcher re-admits unfinished requests to
// the FRONT of their session's pending group and re-drains the admission
// queue — so a request submitted mid-stream joins the running decode batch
// at the next token boundary instead of waiting gen_tokens steps behind it.
// The step sequence on one lane is bitwise-identical to a monolithic run.
//
// Sharding. The scheduler is partitioned like the pool it dispatches onto:
// one admission queue + one dispatcher thread per shard (auto = one per pool
// partition; PLT_SERVE_SHARDS overrides). A session is pinned to the
// partition holding its weights (ModelRegistry::add, or round-robin on first
// submit) and its requests are admitted to that shard, whose dispatcher
// executes each batch with run_on(partition) — so batches of sessions on
// different partitions run CONCURRENTLY on disjoint sub-teams instead of
// serializing one whole-team region at a time. An idle shard (empty queue,
// nothing pending) steals requests from its siblings' queues; stolen batches
// execute on the thief's partition and are counted per partition
// (ThreadPool::note_steal). Per-session batches are serialized by the
// session's exec mutex, so a stolen batch never races the home dispatcher on
// the same lanes. With one shard the layout and execution path reduce
// exactly to the pre-sharding scheduler (one queue, whole-team batches).
//
// A batch executes as one region on the persistent pool: team member t runs
// requests t, t+nthreads, ... each on its own session lane, and every
// PARLOOPER nest inside a request degrades to a serial walk (nested-region
// rule). So the per-batch dispatch cost is one epoch bump — no per-request
// OpenMP region spawn, ever.
//
// Determinism: a lane is a full model replica seeded identically to every
// other lane, and a serial nest walk is bitwise-equal to a parallel one
// (threading.hpp invariant), so batched execution is bitwise-identical to
// sequential per-request execution — on any shard, stolen or not.
// tests/test_serving.cpp asserts this for sharded and single-queue layouts.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "common/status.hpp"
#include "serving/session.hpp"

namespace plt::serving {

struct SchedulerConfig {
  int max_batch = 8;              // PLT_SERVE_MAX_BATCH
  std::int64_t batch_usecs = 200; // PLT_SERVE_BATCH_USECS (0 = flush asap)
  std::size_t queue_capacity = 1024;  // PLT_SERVE_QUEUE_CAP (per shard)

  // PLT_SERVE_SHARDS: admission queues + dispatcher threads. 0 = auto (one
  // per pool partition under the pool runtime, else 1). Any explicit count
  // works: a home batch always executes on its session's own partition
  // (weight locality is kept even with fewer shards than partitions), and
  // with more shards than partitions the extra dispatchers share sub-teams
  // — a partition contended by two dispatchers degrades the loser's batch
  // to a serial region (documented run_on behaviour), never deadlocks.
  int shards = 0;

  // PLT_SERVE_STEAL: idle shards steal from siblings' queues (default on).
  bool steal = true;

  // PLT_SERVE_DEADLINE_USECS: default per-request deadline, relative to
  // submit time (0 = none). A request whose deadline passes while it is
  // still queued completes kDeadlineExceeded WITHOUT executing; its output
  // buffer is untouched. SubmitOptions overrides per request.
  std::int64_t default_deadline_usecs = 0;

  // PLT_SERVE_SUBMIT_TIMEOUT_USECS: how long submit() blocks on a full
  // admission queue before shedding the request kResourceExhausted
  // (0 = block until space frees up — the pre-deadline behaviour).
  std::int64_t submit_timeout_usecs = 0;

  // PLT_SERVE_QUARANTINE: when a batch request fails, mark its session
  // unhealthy and reject subsequent submits to it kUnavailable until
  // Session::mark_healthy() re-admits it (default on). Other sessions are
  // never affected either way.
  bool quarantine = true;

  // PLT_SERVE_PRIORITY: class-aware flush ordering (default on). Off, every
  // request lands in one class-blind pending map and the dispatcher reduces
  // to the strict-FIFO grouping of the pre-priority scheduler.
  bool priority = true;

  // PLT_SERVE_DECODE_STEP_TOKENS: decode granularity for steppable sessions
  // — generated tokens per resumable step (continuous batching). 0 disables
  // stepping: every session executes as one monolithic run(), the
  // pre-continuous-batching behaviour. Has no effect on non-steppable
  // sessions, which always run monolithically.
  int decode_step_tokens = 1;

  // PLT_SERVE_TARGET_DELAY_USECS: adaptive overload control (0 = off, the
  // fixed queue-cap behaviour). When on, each dispatcher runs a CoDel-style
  // delay-gradient controller on its standing backlog: if the MINIMUM
  // head-of-line sojourn over a controller interval stays above this target
  // the shard first BROWNS OUT (throughput-class groups yield to any pending
  // latency work and new steppable submits get a halved decode window) and,
  // if the backlog still does not drain, sheds throughput-class queued
  // requests kResourceExhausted — earliest-to-miss-deadline first, so the
  // work least likely to make its deadline goes before work that still can.
  // Latency-class requests are never gradient-shed; their p95 degrades last.
  std::int64_t target_delay_usecs = 0;

  // Reads the PLT_SERVE_* environment knobs (range-validated; bad values
  // warn and fall back to the defaults above).
  static SchedulerConfig from_env();
};

// One inference request, the primary submit() currency. `in`/`out` must stay
// valid until the handle reports done. cls: kSessionDefault resolves to
// Session::default_class() at submit time. deadline_usecs: -1 = use the
// config default, 0 = no deadline, > 0 = relative deadline in microseconds
// from submit (expired-while-queued requests complete kDeadlineExceeded
// without executing; a stepped request that already ran its first step is
// past the point of no return and always runs to completion).
//
// on_done: optional completion callback, invoked EXACTLY ONCE with the
// request's terminal status, after done() is observable — on every terminal
// path (executed, failed, expired, shed, rejected-at-submit). It runs on
// whichever thread resolves the request (a dispatcher for executed/expired
// work, the submitting thread for refusals), so it must be cheap and must
// not block on the scheduler: the network front-end uses it to hand the
// encoded response to its event loop instead of parking a thread per
// request on handle.wait().
struct Request {
  const float* in = nullptr;
  float* out = nullptr;
  RequestClass cls = RequestClass::kSessionDefault;
  std::int64_t deadline_usecs = -1;
  std::function<void(const Status&)> on_done;
};

// Legacy per-request submit options, kept so pre-redesign call sites compile
// unchanged; the (session, in, out, SubmitOptions) overload forwards to
// submit(session, Request). New code should pass a Request directly.
struct SubmitOptions {
  std::int64_t deadline_usecs = -1;
};

// Per-model serving counters, snapshot via RequestScheduler::stats().
// `requests` counts successfully completed requests only; terminal failures
// are split by cause so latency means stay comparable across chaos runs.
struct ModelStats {
  std::string model;
  std::uint64_t requests = 0;
  std::uint64_t failed = 0;    // batch execution threw (kInternal, ...)
  std::uint64_t expired = 0;   // deadline passed while queued (kDeadlineExceeded)
  std::uint64_t shed = 0;      // admission shed (kResourceExhausted)
  std::uint64_t rejected = 0;  // refused at submit (kUnavailable)
  std::uint64_t batches = 0;               // monolithic regions
  std::uint64_t batched_requests_sum = 0;  // sum of monolithic batch sizes
  std::uint64_t decode_steps = 0;          // stepped regions (token windows)
  std::uint64_t decode_step_requests_sum = 0;  // sum of stepped occupancies
  double sum_latency_us = 0.0;             // submit -> completion
  double max_latency_us = 0.0;
  double sum_exec_us = 0.0;                // batch execution wall time
  std::size_t pending_highwater = 0;       // per-model micro-batch backlog

  double mean_latency_us() const {
    return requests ? sum_latency_us / static_cast<double>(requests) : 0.0;
  }
  double mean_batch() const {
    return batches ? static_cast<double>(batched_requests_sum) /
                         static_cast<double>(batches)
                   : 0.0;
  }
  // Mean concurrent requests per stepped decode region — the continuous-
  // batching win shows up here as occupancy > 1 under mixed arrival times.
  double mean_decode_occupancy() const {
    return decode_steps ? static_cast<double>(decode_step_requests_sum) /
                              static_cast<double>(decode_steps)
                        : 0.0;
  }
};

class RequestScheduler;

namespace detail {
struct RequestState {
  std::shared_ptr<Session> session;
  const float* in = nullptr;
  float* out = nullptr;
  RequestScheduler* owner = nullptr;  // for the shared completion cv
  std::chrono::steady_clock::time_point t_submit;
  std::chrono::steady_clock::time_point deadline;  // valid iff has_deadline
  bool has_deadline = false;
  bool admitted = false;     // false: refused/shed at submit (ok() is false)
  RequestClass cls = RequestClass::kThroughput;  // resolved at submit
  // Continuous batching (dispatcher-owned, only ever touched by the shard
  // that holds the request): completed steps, total steps at the request's
  // decode granularity (1 = monolithic), and the exclusively-held session
  // lane for steps_total > 1 (-1 until acquired before step 0). step_tokens
  // is resolved at submit — normally the scheduler's configured granularity,
  // halved under brownout — and stays fixed for the request's lifetime so
  // its step accounting is self-consistent.
  int step = 0;
  int steps_total = 1;
  int step_tokens = 0;
  int lane = -1;
  Status status;             // terminal status; written before done's release
  double latency_us = 0.0;   // written by the dispatcher before done
  std::function<void(const Status&)> on_done;  // fired once, after done
  std::atomic<bool> done{false};
};
}  // namespace detail

// Handle returned by submit(). Every handle resolves to exactly ONE terminal
// status: OK after successful execution, or the failure Status (rejected,
// shed, expired, failed — see StatusCode). ok() is false when the request
// was refused at submit (shutdown, quarantine, load shed) — such handles are
// done() immediately and carry the refusal in status(). Valid to wait on
// from any thread; must not outlive the scheduler.
class RequestHandle {
 public:
  RequestHandle() = default;

  bool ok() const { return st_ != nullptr && st_->admitted; }
  bool done() const {
    return st_ == nullptr || st_->done.load(std::memory_order_acquire);
  }
  // Blocks until the request completes (returns immediately if !ok()).
  void wait() const;
  // Terminal-only contract: the returned Status is the request's resolution
  // and is meaningful exactly once done() is true. Before that, status()
  // reports the distinct non-terminal kInFlight (never OK — a pre-redesign
  // wart let an unresolved handle read as success). A default-constructed
  // handle reports kUnavailable.
  Status status() const {
    if (st_ == nullptr) return Status::Unavailable("empty request handle");
    if (!st_->done.load(std::memory_order_acquire)) {
      return Status(StatusCode::kInFlight, "request in flight");
    }
    return st_->status;
  }
  // Resolved priority class (the session default already applied); valid
  // from the moment submit() returns. kSessionDefault only for an empty
  // handle.
  RequestClass request_class() const {
    return st_ ? st_->cls : RequestClass::kSessionDefault;
  }
  // submit -> completion, microseconds; valid once done().
  double latency_us() const { return st_ ? st_->latency_us : 0.0; }

 private:
  friend class RequestScheduler;
  explicit RequestHandle(std::shared_ptr<detail::RequestState> st)
      : st_(std::move(st)) {}
  std::shared_ptr<detail::RequestState> st_;
};

class RequestScheduler {
 public:
  explicit RequestScheduler(SchedulerConfig cfg = SchedulerConfig::from_env());
  ~RequestScheduler();  // implies shutdown()

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  // Enqueues one inference request (the primary entry point). req.in/out
  // must stay valid until the handle reports done. Returns a !ok() handle
  // (with the refusal in status()) after shutdown() has begun, when the
  // session is quarantined, or when the request was shed at admission. On a
  // full queue: blocks (spin + yield) until space frees, unless the
  // request's deadline passes or cfg.submit_timeout_usecs elapses — then it
  // is shed kResourceExhausted (newest-over-deadline work goes first under
  // saturation; queued requests are never dropped).
  RequestHandle submit(const std::shared_ptr<Session>& session,
                       const Request& req);

  // Legacy shim over submit(session, Request) — pre-redesign call sites
  // (positional buffers + SubmitOptions) compile unchanged and inherit the
  // session's default class.
  RequestHandle submit(const std::shared_ptr<Session>& session,
                       const float* in, float* out,
                       const SubmitOptions& opts = SubmitOptions()) {
    Request req;
    req.in = in;
    req.out = out;
    req.deadline_usecs = opts.deadline_usecs;
    return submit(session, req);
  }

  // Stops admission, drains every accepted request (in-flight work
  // completes), then joins every dispatcher. Idempotent.
  void shutdown();

  const SchedulerConfig& config() const { return cfg_; }

  // Resolved shard count (>= 1; cfg.shards or the pool partition count).
  int shard_count() const { return static_cast<int>(shards_.size()); }

  // Snapshot of the per-model counters (stable once shutdown() returned).
  std::vector<ModelStats> stats() const;

  // Scheduler-wide terminal-status accounting. After every submitted handle
  // is done, submitted == completed + failed + expired + shed + rejected —
  // the chaos tests and the CI chaos job assert this exactly.
  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  // resolved OK
    std::uint64_t failed = 0;     // execution threw
    std::uint64_t expired = 0;    // deadline passed while queued
    std::uint64_t shed = 0;       // shed at admission
    std::uint64_t rejected = 0;   // refused at submit
  };
  Counters counters() const;

  // Requests shard s popped from a sibling's queue (0 <= s < shard_count()).
  std::uint64_t steals(int s) const;

  // Deepest (queue + pending) backlog observed by any shard's dispatcher.
  std::size_t queue_depth_highwater() const {
    return queue_highwater_.load(std::memory_order_relaxed);
  }

  // ---- Watchdog / supervision surface (serving::Watchdog) ----------------

  // Monotone liveness counter for shard s's dispatcher: advances once per
  // dispatcher loop iteration. A dispatcher whose heartbeat stops while
  // shard_backlog(s) > 0 is wedged (a parked dispatcher with an empty shard
  // is NOT — its backlog is zero).
  std::uint64_t shard_heartbeat(int s) const;

  // Approximate backlog owned by shard s: admission-queue depth plus the
  // dispatcher-local pending count it last published.
  std::size_t shard_backlog(int s) const;

  // Watchdog quarantine: while set, submit() reroutes shard s's admissions
  // to the next healthy shard. Requests already queued on s stay there for
  // the restarted dispatcher to drain — they are never dropped by the flag.
  bool shard_quarantined(int s) const;
  void set_shard_quarantined(int s, bool q);

  // Supervised dispatcher restart: bumps the shard's generation (releasing a
  // thread wedged at the dispatcher_stall fault point — the stale thread
  // re-enqueues its local pending work and exits), retires the old thread
  // for joining at shutdown, and starts a fresh dispatcher on the same
  // shard. Returns false after shutdown has begun. Thread-safe.
  bool restart_dispatcher(int s);

  // Total supervised restarts performed (restart_dispatcher calls that ran).
  std::uint64_t dispatcher_restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }

  // ---- Overload-controller observability ---------------------------------

  // Current delay-gradient level of shard s (0 normal / 1 brownout / 2
  // shedding); 0 when adaptive overload control is off.
  int overload_level(int s) const;
  // Times any shard escalated from normal into brownout (level 0 -> 1).
  std::uint64_t overload_brownouts() const {
    return brownouts_.load(std::memory_order_relaxed);
  }
  // Requests shed by the delay-gradient controller (a subset of
  // counters().shed — gradient sheds stay inside the terminal accounting).
  std::uint64_t overload_sheds() const {
    return gradient_sheds_.load(std::memory_order_relaxed);
  }

 private:
  // One same-session micro-batch group. A deque because continuous batching
  // re-admits unfinished stepped requests at the FRONT (they own lanes and
  // must keep their batch slots at the next token boundary) while new
  // arrivals append at the back.
  struct Pending {
    std::deque<std::shared_ptr<detail::RequestState>> reqs;
    std::chrono::steady_clock::time_point oldest;
    std::size_t highwater = 0;
  };

  // Per-shard admission queue + dispatcher + park/wake state. Heap-pinned
  // (unique_ptr) so shards never move; each dispatcher only touches its own
  // shard's lines on the steady-state path.
  struct Shard {
    explicit Shard(std::size_t queue_cap) : queue(queue_cap) {}
    common::MpmcQueue<std::shared_ptr<detail::RequestState>> queue;
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    std::atomic<bool> parked{false};
    // True only while parked with NOTHING pending — the state in which the
    // shard can act on a steal nudge (a deadline-parked shard has its own
    // batches to run and ignores hints).
    std::atomic<bool> idle_parked{false};
    // Set by a submitter whose home dispatcher is busy: wakes this (idle-
    // parked) shard to scan siblings' queues. Purely a latency hint — a
    // missed nudge costs nothing, the home dispatcher drains its own queue.
    std::atomic<bool> steal_hint{false};
    std::atomic<std::uint64_t> stolen{0};  // requests taken from siblings
    // Liveness surface for the watchdog. heartbeat advances once per
    // dispatcher loop iteration — a wedged dispatcher (stalled inside an
    // iteration) stops advancing it while pending_pub + the queue stay
    // non-empty, which is exactly the signature the watchdog flags.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::size_t> pending_pub{0};  // dispatcher-local backlog
    // Quarantined by the watchdog: submit() reroutes new admissions to the
    // next healthy shard (executed there under the thief rules: session exec
    // mutex + the thief's partition). Cleared when progress resumes.
    std::atomic<bool> quarantined{false};
    // Supervised-restart epoch. A dispatcher thread is born with a
    // generation; restart_dispatcher() bumps it, which (a) releases a thread
    // wedged at the dispatcher_stall fault point and (b) tells the stale
    // thread to hand its local pending work back to the queue and exit
    // instead of racing the replacement.
    std::atomic<std::uint64_t> generation{0};
    // Delay-gradient overload level published by the dispatcher:
    // 0 = normal, 1 = brownout, 2 = gradient shedding (see
    // SchedulerConfig::target_delay_usecs). submit() reads it to shrink the
    // decode window of new steppable requests under brownout.
    std::atomic<int> overload_level{0};
    std::thread dispatcher;
  };

  void dispatcher_main(int s, std::uint64_t generation);
  void execute_batch(int s, Session* session,
                     std::vector<std::shared_ptr<detail::RequestState>> reqs,
                     std::size_t pending_highwater);
  // Runs ONE resumable step for every request in `reqs` as one region (each
  // on its own sticky lane), resolves the ones that finished or failed, and
  // returns the unfinished survivors in order — the dispatcher re-admits
  // them to the front of their pending group.
  std::vector<std::shared_ptr<detail::RequestState>> execute_steps(
      int s, Session* session,
      std::vector<std::shared_ptr<detail::RequestState>> reqs,
      std::size_t pending_highwater);
  void wake_shard(Shard& shard);
  int shard_of(Session* session);
  // Resolves a never-executed request: sets its terminal status + latency,
  // bumps the per-model and scheduler counters matching the status code,
  // and completes the handle.
  void complete_terminal(detail::RequestState& r, Status status);

  SchedulerConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Supervised-restart bookkeeping: restart_mu_ serializes restarts against
  // each other and against shutdown's join; retired_ holds replaced
  // dispatcher threads (wedged or stale) until shutdown joins them.
  std::mutex restart_mu_;
  std::vector<std::thread> retired_;
  std::atomic<std::uint64_t> restarts_{0};

  // Overload-controller counters (see overload_brownouts/overload_sheds).
  std::atomic<std::uint64_t> brownouts_{0};
  std::atomic<std::uint64_t> gradient_sheds_{0};

  std::atomic<bool> stop_{false};
  std::atomic<int> submitters_{0};  // producers currently inside submit()
  std::atomic<std::size_t> queue_highwater_{0};
  std::atomic<int> rr_pin_{0};  // round-robin cursor for unpinned sessions

  // Scheduler-wide terminal-status accounting (see Counters).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rejected_{0};

  mutable std::mutex stats_mu_;
  std::unordered_map<std::string, ModelStats> stats_;

  // One completion condvar for all requests, notified once per batch: far
  // fewer futex wakes than a per-request condvar (which measurably eats
  // into small-request throughput on low-core hosts).
  friend class RequestHandle;
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::atomic<bool> joined_{false};
};

}  // namespace plt::serving
