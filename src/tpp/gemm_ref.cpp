// Scalar reference microkernels. These define the numerics contract: every
// vectorized path must agree with these to within accumulation-order
// tolerance, and the test suite enforces it.
#include "tpp/gemm_micro.hpp"

namespace plt::tpp::detail {

void gemm_f32_ref(const MicroArgs& s, const float* a, const float* b, float* c,
                  bool acc) {
  for (std::int64_t j = 0; j < s.n; ++j) {
    const float* bj = b + j * s.ldb;
    float* cj = c + j * s.ldc;
    for (std::int64_t i = 0; i < s.m; ++i) {
      float sum = acc ? cj[i] : 0.0f;
      for (std::int64_t kk = 0; kk < s.k; ++kk) {
        sum += a[i + kk * s.lda] * bj[kk];
      }
      cj[i] = sum;
    }
  }
}

void gemm_bf16_flat_ref(const MicroArgs& s, const bf16* a, const bf16* b,
                        float* c, bool acc) {
  for (std::int64_t j = 0; j < s.n; ++j) {
    const bf16* bj = b + j * s.ldb;
    float* cj = c + j * s.ldc;
    for (std::int64_t i = 0; i < s.m; ++i) {
      float sum = acc ? cj[i] : 0.0f;
      for (std::int64_t kk = 0; kk < s.k; ++kk) {
        sum += a[i + kk * s.lda].to_f32() * bj[kk].to_f32();
      }
      cj[i] = sum;
    }
  }
}

void gemm_bf16_vnni_ref(const MicroArgs& s, const bf16* a, const bf16* b,
                        float* c, bool acc) {
  // A is [ceil(k/2)][m][2]; mirror the pairwise accumulation of vdpbf16ps
  // (acc += a0*b0 + a1*b1 per pair) so the fast path matches bit-for-bit on
  // the same accumulation order.
  const std::int64_t kp = (s.k + 1) / 2;
  for (std::int64_t j = 0; j < s.n; ++j) {
    const bf16* bj = b + j * s.ldb;
    float* cj = c + j * s.ldc;
    for (std::int64_t i = 0; i < s.m; ++i) {
      float sum = acc ? cj[i] : 0.0f;
      for (std::int64_t p = 0; p < kp; ++p) {
        const bf16* ap = a + (p * s.lda + i) * 2;
        const float b0 = bj[2 * p].to_f32();
        const float b1 = (2 * p + 1 < s.k) ? bj[2 * p + 1].to_f32() : 0.0f;
        sum += ap[0].to_f32() * b0 + ap[1].to_f32() * b1;
      }
      cj[i] = sum;
    }
  }
}

}  // namespace plt::tpp::detail
