// Block-sparse x dense matrix multiply TPP (Section III-C, Listing 5).
//
// The sparse operand A (M x K) is stored in Block Compressed Sparse Column
// format with a parameterized bm x bk block: for each block-row `im`,
// col_ptr[im]..col_ptr[im+1] indexes the non-empty blocks and row_idx[] holds
// their k-block coordinates (the paper's A_colptr/A_rowidx, which it indexes
// by the M block — the names follow the paper). Dense blocks are stored
// column-major, and VNNI2-packed for bf16 so the low-precision dot-product
// microkernels apply directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/bf16.hpp"
#include "common/rng.hpp"
#include "tpp/brgemm.hpp"

namespace plt::tpp {

class BcscMatrix {
 public:
  // Builds from a dense col-major M x K matrix (ld = M); blocks whose max
  // |value| is <= zero_tol are dropped. M % bm == 0 and K % bk == 0.
  static BcscMatrix from_dense(const float* dense, std::int64_t M,
                               std::int64_t K, std::int64_t bm,
                               std::int64_t bk, DType store,
                               float zero_tol = 0.0f);

  // Magnitude block pruning: keeps the ceil((1-sparsity) * nblocks) blocks
  // with the largest Frobenius norm — the "block-wise weight pruning"
  // methodology of Section IV-B reduced to its performance-relevant part.
  static BcscMatrix prune_from_dense(const float* dense, std::int64_t M,
                                     std::int64_t K, std::int64_t bm,
                                     std::int64_t bk, DType store,
                                     double sparsity);

  // Random block-sparse matrix with the given block-survival probability
  // (used by the Fig. 8 sweep).
  static BcscMatrix random(std::int64_t M, std::int64_t K, std::int64_t bm,
                           std::int64_t bk, DType store, double sparsity,
                           Xoshiro256& rng);

  std::int64_t M() const { return M_; }
  std::int64_t K() const { return K_; }
  std::int64_t bm() const { return bm_; }
  std::int64_t bk() const { return bk_; }
  DType dtype() const { return dtype_; }
  std::int64_t block_rows() const { return M_ / bm_; }
  std::int64_t block_cols() const { return K_ / bk_; }
  std::int64_t nnz_blocks() const { return static_cast<std::int64_t>(row_idx_.size()); }
  double density() const {
    return static_cast<double>(nnz_blocks()) /
           static_cast<double>(block_rows() * block_cols());
  }

  const std::vector<std::int64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::int32_t>& row_idx() const { return row_idx_; }
  const void* block_values(std::int64_t nz_index) const {
    return vals_.data() + static_cast<std::size_t>(nz_index) * block_bytes_;
  }
  std::int64_t block_elems() const { return block_elems_; }

  // Densifies back to col-major M x K fp32 (tests / baselines).
  void to_dense(float* out) const;

 private:
  BcscMatrix() = default;
  static BcscMatrix build(const float* dense, std::int64_t M, std::int64_t K,
                          std::int64_t bm, std::int64_t bk, DType store,
                          const std::vector<std::uint8_t>& keep);

  std::int64_t M_ = 0, K_ = 0, bm_ = 0, bk_ = 0;
  DType dtype_ = DType::F32;
  std::int64_t block_elems_ = 0;   // elements per stored block
  std::size_t block_bytes_ = 0;
  std::vector<std::int64_t> col_ptr_;
  std::vector<std::int32_t> row_idx_;
  AlignedBuffer<std::uint8_t> vals_;
};

// The bcsc_spmm_tpp of Listing 5: computes one bm x bn output tile
//   C_tile = beta * C_tile + sum_{nz in block-row im} A_blk(im, ik) * B(ik*bk.., :)
// where B is a K x bn dense column panel (col-major, ldb >= K) in the same
// precision as A's blocks and C is fp32 or matching low precision.
class SpmmTPP {
 public:
  // ldb/ldc describe the dense panel/tile strides (0 => bk / bm). For a full
  // K x N dense B the natural ldb is K, and for a full M x N dense C the
  // natural ldc is M.
  SpmmTPP(std::int64_t bm, std::int64_t bk, std::int64_t bn, DType ab,
          DType c, float beta, std::int64_t ldb = 0, std::int64_t ldc = 0);

  void operator()(const BcscMatrix& a, std::int64_t im, const void* b_panel,
                  std::int64_t ldb, void* c_tile, std::int64_t ldc) const;

  // Effective flops for one tile of block-row im (2*bm*bk*bn per nz block).
  double flops(const BcscMatrix& a, std::int64_t im) const;

 private:
  std::int64_t bm_, bk_, bn_;
  DType ab_, c_;
  float beta_;
  std::int64_t ldb_ = 0, ldc_ = 0;  // must precede brgemm_ (init order)
  BrgemmTPP brgemm_;
};

}  // namespace plt::tpp
