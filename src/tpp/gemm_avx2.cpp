// AVX2+FMA fp32 microkernel. Compiled with -mavx2 -mfma (see CMakeLists);
// only referenced when CPUID reports the features at runtime.
//
// Register blocking: 8-wide m vectors (ymm) x 4 accumulators in n — the
// classic 2D register-blocking strategy of [21] scaled to 16 ymm registers.
#include "tpp/gemm_micro.hpp"

#include <immintrin.h>

namespace plt::tpp::detail {

namespace {

// Mask for the m-tail: lane i active iff i < rem.
__m256i tail_mask(std::int64_t rem) {
  alignas(32) std::int32_t lanes[8];
  for (int i = 0; i < 8; ++i) lanes[i] = i < rem ? -1 : 0;
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

template <int NB>
void block_n(const MicroArgs& s, const float* a, const float* b, float* c,
             bool acc, std::int64_t j0) {
  const std::int64_t m_full = s.m & ~std::int64_t(7);
  for (std::int64_t i = 0; i < m_full; i += 8) {
    __m256 accv[NB];
    for (int jj = 0; jj < NB; ++jj) {
      accv[jj] = acc ? _mm256_loadu_ps(c + i + (j0 + jj) * s.ldc)
                     : _mm256_setzero_ps();
    }
    for (std::int64_t kk = 0; kk < s.k; ++kk) {
      const __m256 av = _mm256_loadu_ps(a + i + kk * s.lda);
      for (int jj = 0; jj < NB; ++jj) {
        const __m256 bv = _mm256_broadcast_ss(b + kk + (j0 + jj) * s.ldb);
        accv[jj] = _mm256_fmadd_ps(av, bv, accv[jj]);
      }
    }
    for (int jj = 0; jj < NB; ++jj) {
      _mm256_storeu_ps(c + i + (j0 + jj) * s.ldc, accv[jj]);
    }
  }
  const std::int64_t rem = s.m - m_full;
  if (rem > 0) {
    const __m256i mask = tail_mask(rem);
    for (int jj = 0; jj < NB; ++jj) {
      float* cj = c + m_full + (j0 + jj) * s.ldc;
      __m256 accv = acc ? _mm256_maskload_ps(cj, mask) : _mm256_setzero_ps();
      for (std::int64_t kk = 0; kk < s.k; ++kk) {
        const __m256 av = _mm256_maskload_ps(a + m_full + kk * s.lda, mask);
        const __m256 bv = _mm256_broadcast_ss(b + kk + (j0 + jj) * s.ldb);
        accv = _mm256_fmadd_ps(av, bv, accv);
      }
      _mm256_maskstore_ps(cj, mask, accv);
    }
  }
}

}  // namespace

void gemm_f32_avx2(const MicroArgs& s, const float* a, const float* b,
                   float* c, bool acc) {
  std::int64_t j = 0;
  for (; j + 4 <= s.n; j += 4) block_n<4>(s, a, b, c, acc, j);
  for (; j + 2 <= s.n; j += 2) block_n<2>(s, a, b, c, acc, j);
  for (; j < s.n; ++j) block_n<1>(s, a, b, c, acc, j);
}

}  // namespace plt::tpp::detail
