// Unary TPPs: elementwise operators, activation functions and reductions on
// 2D column-major tensors (Section II-A's zero_tpp, relu_tpp, ... family).
#pragma once

#include <functional>
#include <memory>

#include "tpp/tpp_types.hpp"

namespace plt::tpp {

class UnaryTPP {
 public:
  // Resolves the descriptor to a kernel (cached process-wide by key).
  explicit UnaryTPP(UnaryDesc desc);

  // Convenience constructor for the common square-shape case.
  UnaryTPP(UnaryKind kind, std::int64_t rows, std::int64_t cols,
           DType in = DType::F32, DType out = DType::F32);

  // in:  rows x cols (ldi), except kReluBwd/kGeluBwd where `in` is the
  //      gradient and `extra` the saved forward input.
  // out: rows x cols (ldo) for elementwise ops; 1 x cols for row-reductions;
  //      rows x 1 for column-reductions (both written densely).
  void operator()(const void* in, void* out, const void* extra = nullptr) const;

  const UnaryDesc& desc() const { return desc_; }

 private:
  UnaryDesc desc_;
  std::shared_ptr<std::function<void(const void*, void*, const void*)>> fn_;
};

// Reference (scalar, fp32-accumulate) math shared by kernels and tests.
float unary_scalar_op(UnaryKind kind, float x, float alpha);
float gelu_fwd_scalar(float x);
float gelu_bwd_scalar(float grad, float x);

}  // namespace plt::tpp
