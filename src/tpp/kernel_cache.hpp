// Process-wide kernel cache: descriptor key -> resolved kernel.
//
// In the paper the TPP backend JITs machine code per descriptor and caches
// it; PARLOOPER likewise caches JITed loop nests so repeated requests return
// the compiled artifact (Section II-B). This cache reproduces that behaviour
// for our dispatch-based backend and exposes hit/miss counters that the test
// suite uses to assert "same descriptor => no second code generation".
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace plt::tpp {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

template <typename Kernel>
class KernelCache {
 public:
  using Factory = std::function<std::shared_ptr<Kernel>()>;

  std::shared_ptr<Kernel> get_or_create(const std::string& key,
                                        const Factory& factory) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        ++hits_;
        return it->second;
      }
    }
    // Build outside the lock (factories may be expensive); last writer wins
    // on a race, which is harmless because kernels are immutable.
    std::shared_ptr<Kernel> k = factory();
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = map_.emplace(key, k);
    if (!inserted) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    return k;
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return CacheStats{hits_, misses_};
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_ = misses_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Kernel>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace plt::tpp
