// Process-wide kernel cache: descriptor key -> resolved kernel.
//
// In the paper the TPP backend JITs machine code per descriptor and caches
// it; PARLOOPER likewise caches JITed loop nests so repeated requests return
// the compiled artifact (Section II-B). On a serving workload the cache is
// ~100% hits, so the hit path must not serialize the team:
//
//   1. a per-thread direct-mapped memo of the last-resolved kernels answers
//      repeat lookups with zero shared-state traffic;
//   2. memo misses take a reader (shared) lock on one of kShards shard maps,
//      so concurrent hits on different keys never contend and hits on the
//      same key share the lock;
//   3. only genuine code generation takes a shard's exclusive lock.
//
// Counters are atomics (stats must not race) and count actual events: a hit
// is a lookup answered from memo or map, a miss is one factory invocation —
// codegen that loses an insert race is still codegen and still counts (the
// previous implementation credited the loser with a hit and deferred the
// winner's miss, so stats drifted from reality under contention).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace plt::tpp {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

template <typename Kernel>
class KernelCache {
 public:
  using Factory = std::function<std::shared_ptr<Kernel>()>;

  std::shared_ptr<Kernel> get_or_create(const std::string& key,
                                        const Factory& factory) {
    const std::size_t hash = std::hash<std::string>{}(key);
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);

    MemoEntry& memo = memo_slot(hash);
    if (memo.cache_id == id_ && memo.epoch == epoch && memo.hash == hash &&
        memo.key == key) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return memo.kernel;
    }

    Shard& shard = shards_[hash % kShards];
    {
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        remember(memo, epoch, hash, key, it->second);
        return it->second;
      }
    }

    // Build outside any lock (factories may JIT). Every factory run is a
    // codegen event and is accounted as a miss, even if it loses the insert
    // race below (the kernel is immutable, so the winner's copy is kept).
    std::shared_ptr<Kernel> k = factory();
    misses_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      auto [it, inserted] = shard.map.emplace(key, k);
      k = it->second;
    }
    remember(memo, epoch, hash, key, k);
    return k;
  }

  CacheStats stats() const {
    return CacheStats{hits_.load(std::memory_order_relaxed),
                      misses_.load(std::memory_order_relaxed)};
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  void clear() {
    // Bumping the epoch invalidates every thread's memo entries for this
    // cache without touching other threads' storage.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    for (Shard& s : shards_) {
      std::unique_lock<std::shared_mutex> lock(s.mu);
      s.map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kMemoSlots = 8;  // per-thread last-N memo

  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Kernel>> map;
  };

  struct MemoEntry {
    // Process-unique owner id, NOT a pointer: a destroyed cache's memo
    // entries must never match a new cache reusing the same address.
    std::uint64_t cache_id = 0;
    std::uint64_t epoch = 0;
    std::size_t hash = 0;
    std::string key;
    std::shared_ptr<Kernel> kernel;
  };

  MemoEntry& memo_slot(std::size_t hash) {
    thread_local std::array<MemoEntry, kMemoSlots> memo;
    return memo[hash % kMemoSlots];
  }

  static std::uint64_t next_cache_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void remember(MemoEntry& memo, std::uint64_t epoch, std::size_t hash,
                const std::string& key, const std::shared_ptr<Kernel>& k) {
    memo.cache_id = id_;
    memo.epoch = epoch;
    memo.hash = hash;
    memo.key = key;
    memo.kernel = k;
  }

  std::array<Shard, kShards> shards_;
  const std::uint64_t id_ = next_cache_id();
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> epoch_{1};
};

}  // namespace plt::tpp
