#include "tpp/spmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "tpp/transforms.hpp"

namespace plt::tpp {

namespace {

std::int64_t stored_block_elems(DType dt, std::int64_t bm, std::int64_t bk) {
  return dt == DType::BF16 ? vnni2_elems(bm, bk) : bm * bk;
}

}  // namespace

BcscMatrix BcscMatrix::build(const float* dense, std::int64_t M,
                             std::int64_t K, std::int64_t bm, std::int64_t bk,
                             DType store, const std::vector<std::uint8_t>& keep) {
  PLT_CHECK(M % bm == 0 && K % bk == 0, "BCSC: block sizes must divide shape");
  PLT_CHECK(store == DType::F32 || store == DType::BF16,
            "BCSC: blocks are f32 or bf16");
  BcscMatrix a;
  a.M_ = M;
  a.K_ = K;
  a.bm_ = bm;
  a.bk_ = bk;
  a.dtype_ = store;
  a.block_elems_ = stored_block_elems(store, bm, bk);
  a.block_bytes_ = static_cast<std::size_t>(a.block_elems_) * dtype_size(store);

  const std::int64_t Mb = M / bm, Kb = K / bk;
  a.col_ptr_.assign(static_cast<std::size_t>(Mb) + 1, 0);
  std::int64_t nnz = 0;
  for (std::int64_t im = 0; im < Mb; ++im) {
    for (std::int64_t ik = 0; ik < Kb; ++ik) {
      if (keep[static_cast<std::size_t>(im * Kb + ik)]) ++nnz;
    }
    a.col_ptr_[static_cast<std::size_t>(im) + 1] = nnz;
  }
  a.row_idx_.reserve(static_cast<std::size_t>(nnz));
  a.vals_.resize(static_cast<std::size_t>(nnz) * a.block_bytes_);

  std::vector<bf16> flat_bf16;
  if (store == DType::BF16) flat_bf16.resize(static_cast<std::size_t>(bm * bk));

  std::int64_t nz = 0;
  for (std::int64_t im = 0; im < Mb; ++im) {
    for (std::int64_t ik = 0; ik < Kb; ++ik) {
      if (!keep[static_cast<std::size_t>(im * Kb + ik)]) continue;
      std::uint8_t* dst = a.vals_.data() + static_cast<std::size_t>(nz) * a.block_bytes_;
      if (store == DType::F32) {
        float* fb = reinterpret_cast<float*>(dst);
        for (std::int64_t kk = 0; kk < bk; ++kk)
          for (std::int64_t mm = 0; mm < bm; ++mm)
            fb[mm + kk * bm] = dense[(im * bm + mm) + (ik * bk + kk) * M];
      } else {
        for (std::int64_t kk = 0; kk < bk; ++kk)
          for (std::int64_t mm = 0; mm < bm; ++mm)
            flat_bf16[static_cast<std::size_t>(mm + kk * bm)] =
                bf16::from_f32(dense[(im * bm + mm) + (ik * bk + kk) * M]);
        vnni2_pack(flat_bf16.data(), reinterpret_cast<bf16*>(dst), bm, bk, bm);
      }
      a.row_idx_.push_back(static_cast<std::int32_t>(ik));
      ++nz;
    }
  }
  return a;
}

BcscMatrix BcscMatrix::from_dense(const float* dense, std::int64_t M,
                                  std::int64_t K, std::int64_t bm,
                                  std::int64_t bk, DType store,
                                  float zero_tol) {
  const std::int64_t Mb = M / bm, Kb = K / bk;
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(Mb * Kb), 0);
  for (std::int64_t im = 0; im < Mb; ++im)
    for (std::int64_t ik = 0; ik < Kb; ++ik) {
      float mx = 0.0f;
      for (std::int64_t kk = 0; kk < bk; ++kk)
        for (std::int64_t mm = 0; mm < bm; ++mm)
          mx = std::max(mx, std::fabs(dense[(im * bm + mm) + (ik * bk + kk) * M]));
      keep[static_cast<std::size_t>(im * Kb + ik)] = mx > zero_tol ? 1 : 0;
    }
  return build(dense, M, K, bm, bk, store, keep);
}

BcscMatrix BcscMatrix::prune_from_dense(const float* dense, std::int64_t M,
                                        std::int64_t K, std::int64_t bm,
                                        std::int64_t bk, DType store,
                                        double sparsity) {
  PLT_CHECK(sparsity >= 0.0 && sparsity < 1.0, "BCSC: sparsity in [0,1)");
  const std::int64_t Mb = M / bm, Kb = K / bk;
  const std::int64_t nblocks = Mb * Kb;
  std::vector<std::pair<float, std::int64_t>> norms;
  norms.reserve(static_cast<std::size_t>(nblocks));
  for (std::int64_t im = 0; im < Mb; ++im)
    for (std::int64_t ik = 0; ik < Kb; ++ik) {
      float nrm = 0.0f;
      for (std::int64_t kk = 0; kk < bk; ++kk)
        for (std::int64_t mm = 0; mm < bm; ++mm) {
          const float v = dense[(im * bm + mm) + (ik * bk + kk) * M];
          nrm += v * v;
        }
      norms.emplace_back(nrm, im * Kb + ik);
    }
  const std::int64_t keep_n = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround((1.0 - sparsity) * static_cast<double>(nblocks))));
  std::nth_element(norms.begin(), norms.begin() + (keep_n - 1), norms.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(nblocks), 0);
  for (std::int64_t i = 0; i < keep_n; ++i)
    keep[static_cast<std::size_t>(norms[static_cast<std::size_t>(i)].second)] = 1;
  return build(dense, M, K, bm, bk, store, keep);
}

BcscMatrix BcscMatrix::random(std::int64_t M, std::int64_t K, std::int64_t bm,
                              std::int64_t bk, DType store, double sparsity,
                              Xoshiro256& rng) {
  std::vector<float> dense(static_cast<std::size_t>(M * K));
  fill_uniform(dense.data(), dense.size(), rng, -0.5f, 0.5f);
  const std::int64_t Mb = M / bm, Kb = K / bk;
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(Mb * Kb));
  for (auto& k : keep) k = rng.next_double() >= sparsity ? 1 : 0;
  return build(dense.data(), M, K, bm, bk, store, keep);
}

void BcscMatrix::to_dense(float* out) const {
  std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(M_ * K_));
  const std::int64_t Kb = K_ / bk_;
  (void)Kb;
  std::vector<bf16> flat(static_cast<std::size_t>(bm_ * bk_));
  for (std::int64_t im = 0; im < block_rows(); ++im) {
    for (std::int64_t nz = col_ptr_[static_cast<std::size_t>(im)];
         nz < col_ptr_[static_cast<std::size_t>(im) + 1]; ++nz) {
      const std::int64_t ik = row_idx_[static_cast<std::size_t>(nz)];
      const void* blk = block_values(nz);
      for (std::int64_t kk = 0; kk < bk_; ++kk)
        for (std::int64_t mm = 0; mm < bm_; ++mm) {
          float v;
          if (dtype_ == DType::F32) {
            v = reinterpret_cast<const float*>(blk)[mm + kk * bm_];
          } else {
            if (kk == 0 && mm == 0)
              vnni2_unpack(reinterpret_cast<const bf16*>(blk), flat.data(),
                           bm_, bk_, bm_);
            v = flat[static_cast<std::size_t>(mm + kk * bm_)].to_f32();
          }
          out[(im * bm_ + mm) + (ik * bk_ + kk) * M_] = v;
        }
    }
  }
}

SpmmTPP::SpmmTPP(std::int64_t bm, std::int64_t bk, std::int64_t bn, DType ab,
                 DType c, float beta, std::int64_t ldb, std::int64_t ldc)
    : bm_(bm),
      bk_(bk),
      bn_(bn),
      ab_(ab),
      c_(c),
      beta_(beta),
      ldb_(ldb == 0 ? bk : ldb),
      ldc_(ldc == 0 ? bm : ldc),
      brgemm_(BrgemmDesc{bm, bn, bk, /*lda=*/bm, ldb_, ldc_, ab, ab,
                         c, beta, BrgemmVariant::kAddress,
                         ab == DType::BF16 ? ALayout::kVnni2 : ALayout::kFlat,
                         0, 0}) {}

void SpmmTPP::operator()(const BcscMatrix& a, std::int64_t im,
                         const void* b_panel, std::int64_t ldb, void* c_tile,
                         std::int64_t ldc) const {
  PLT_CHECK(a.bm() == bm_ && a.bk() == bk_ && a.dtype() == ab_,
            "spmm: matrix does not match TPP descriptor");
  const std::int64_t lo = a.col_ptr()[static_cast<std::size_t>(im)];
  const std::int64_t hi = a.col_ptr()[static_cast<std::size_t>(im) + 1];
  const std::int64_t count = hi - lo;

  // Gather block pointers and run the address-variant BRGEMM over them —
  // the sparse kernel is literally a batch-reduce over the surviving blocks.
  thread_local std::vector<const void*> a_ptrs, b_ptrs;
  a_ptrs.resize(static_cast<std::size_t>(count));
  b_ptrs.resize(static_cast<std::size_t>(count));
  const std::size_t esz = dtype_size(ab_);
  const char* bp = static_cast<const char*>(b_panel);
  for (std::int64_t i = 0; i < count; ++i) {
    a_ptrs[static_cast<std::size_t>(i)] = a.block_values(lo + i);
    const std::int64_t ik = a.row_idx()[static_cast<std::size_t>(lo + i)];
    b_ptrs[static_cast<std::size_t>(i)] =
        bp + static_cast<std::size_t>(ik * bk_) * esz;
  }

  // The BRGEMM descriptor fixes ldb/ldc at construction; rebuild only when a
  // caller overrides the panel strides (construction is a cheap dispatch).
  if (ldb == ldb_ && ldc == ldc_) {
    brgemm_.run_address(a_ptrs.data(), b_ptrs.data(), c_tile, count);
  } else {
    BrgemmDesc d = brgemm_.desc();
    d.ldb = ldb;
    d.ldc = ldc;
    BrgemmTPP local(d);
    local.run_address(a_ptrs.data(), b_ptrs.data(), c_tile, count);
  }
}

double SpmmTPP::flops(const BcscMatrix& a, std::int64_t im) const {
  const std::int64_t count = a.col_ptr()[static_cast<std::size_t>(im) + 1] -
                             a.col_ptr()[static_cast<std::size_t>(im)];
  return 2.0 * static_cast<double>(count) * static_cast<double>(bm_) *
         static_cast<double>(bk_) * static_cast<double>(bn_);
}

}  // namespace plt::tpp
