// AVX-512-BF16 microkernel using the native vdpbf16ps dot-product — the
// x86 "hardware-accelerated tensor contraction" path of the paper (the AMX
// tile engine is substituted by this per DESIGN.md). Compiled with
// -mavx512bf16; referenced only when CPUID reports the feature.
#include "tpp/gemm_micro.hpp"

#include <immintrin.h>

#include <cstring>

namespace plt::tpp::detail {

namespace {

// Broadcast the (2p, 2p+1) bf16 pair of column j as one 32-bit granule. For
// full pairs this is a single vpbroadcastd from memory; only the odd-k tail
// pair needs assembly (its high half is zero-padded).
inline __m512i broadcast_pair(const bf16* bj, std::int64_t p, std::int64_t k) {
  if (2 * p + 1 < k) {
    std::int32_t word;
    std::memcpy(&word, bj + 2 * p, sizeof(word));
    return _mm512_set1_epi32(word);
  }
  return _mm512_set1_epi32(static_cast<std::int32_t>(bj[2 * p].bits));
}

// NB output columns share every A tile load (2D register blocking, [21]).
template <int NB>
void block_n(const MicroArgs& s, const bf16* a, const bf16* b, float* c,
             bool acc, std::int64_t j0) {
  const std::int64_t kp = (s.k + 1) / 2;
  for (std::int64_t i = 0; i < s.m; i += 16) {
    const std::int64_t rem = s.m - i;
    const __mmask16 mask =
        rem >= 16 ? 0xffffu : static_cast<__mmask16>((1u << rem) - 1u);
    __m512 accv[NB];
    for (int jj = 0; jj < NB; ++jj) {
      accv[jj] = acc ? _mm512_maskz_loadu_ps(mask, c + i + (j0 + jj) * s.ldc)
                     : _mm512_setzero_ps();
    }
    for (std::int64_t p = 0; p < kp; ++p) {
      const __m512i packed = _mm512_maskz_loadu_epi32(
          mask, reinterpret_cast<const std::int32_t*>(a + (p * s.lda + i) * 2));
      for (int jj = 0; jj < NB; ++jj) {
        const __m512i bv = broadcast_pair(b + (j0 + jj) * s.ldb, p, s.k);
        accv[jj] = _mm512_dpbf16_ps(accv[jj], reinterpret_cast<__m512bh>(packed),
                                    reinterpret_cast<__m512bh>(bv));
      }
    }
    for (int jj = 0; jj < NB; ++jj) {
      _mm512_mask_storeu_ps(c + i + (j0 + jj) * s.ldc, mask, accv[jj]);
    }
  }
}

}  // namespace

void gemm_bf16_vnni_avx512bf16(const MicroArgs& s, const bf16* a,
                               const bf16* b, float* c, bool acc) {
  std::int64_t j = 0;
  for (; j + 4 <= s.n; j += 4) block_n<4>(s, a, b, c, acc, j);
  for (; j + 2 <= s.n; j += 2) block_n<2>(s, a, b, c, acc, j);
  for (; j < s.n; ++j) block_n<1>(s, a, b, c, acc, j);
}

}  // namespace plt::tpp::detail
