// AVX-512 fp32 and bf16-VNNI microkernels. Compiled with
// -mavx512f/bw/vl/dq (see CMakeLists); only referenced when CPUID agrees.
//
// fp32: 16-wide m vectors x 4 n accumulators with masked m tails.
// bf16-VNNI: A packed [k/2][m][2]; pairs of k are consumed per FMA. The
// upconvert path (gemm_bf16_vnni_avx512) widens bf16 to fp32 in registers so
// it runs on any AVX-512 machine; gemm_bf16_vnni_avx512bf16 (separate TU)
// uses the native vdpbf16ps dot-product.
#include "tpp/gemm_micro.hpp"

#include <immintrin.h>

namespace plt::tpp::detail {

namespace {

template <int NB>
void block_n_f32(const MicroArgs& s, const float* a, const float* b, float* c,
                 bool acc, std::int64_t j0) {
  for (std::int64_t i = 0; i < s.m; i += 16) {
    const std::int64_t rem = s.m - i;
    const __mmask16 mask = rem >= 16 ? 0xffffu
                                     : static_cast<__mmask16>((1u << rem) - 1u);
    __m512 accv[NB];
    for (int jj = 0; jj < NB; ++jj) {
      accv[jj] = acc ? _mm512_maskz_loadu_ps(mask, c + i + (j0 + jj) * s.ldc)
                     : _mm512_setzero_ps();
    }
    for (std::int64_t kk = 0; kk < s.k; ++kk) {
      const __m512 av = _mm512_maskz_loadu_ps(mask, a + i + kk * s.lda);
      for (int jj = 0; jj < NB; ++jj) {
        const __m512 bv = _mm512_set1_ps(b[kk + (j0 + jj) * s.ldb]);
        accv[jj] = _mm512_fmadd_ps(av, bv, accv[jj]);
      }
    }
    for (int jj = 0; jj < NB; ++jj) {
      _mm512_mask_storeu_ps(c + i + (j0 + jj) * s.ldc, mask, accv[jj]);
    }
  }
}

// Widens the even/odd bf16 elements of a [m][2]-packed 32-lane vector into
// two fp32 vectors. Element layout in memory: m0k0 m0k1 m1k0 m1k1 ...
inline void widen_pairs(__m512i packed, __m512& even, __m512& odd) {
  // even lanes: bf16 at 16-bit positions 0,2,4,... -> shift left 16 into the
  // high half of each 32-bit lane (bf16 is the top 16 bits of fp32).
  even = _mm512_castsi512_ps(_mm512_slli_epi32(packed, 16));
  odd = _mm512_castsi512_ps(
      _mm512_and_si512(packed, _mm512_set1_epi32(0xffff0000)));
}

}  // namespace

void gemm_f32_avx512(const MicroArgs& s, const float* a, const float* b,
                     float* c, bool acc) {
  std::int64_t j = 0;
  for (; j + 4 <= s.n; j += 4) block_n_f32<4>(s, a, b, c, acc, j);
  for (; j + 2 <= s.n; j += 2) block_n_f32<2>(s, a, b, c, acc, j);
  for (; j < s.n; ++j) block_n_f32<1>(s, a, b, c, acc, j);
}

namespace {

// NB output columns share every A tile load/widen (2D register blocking).
template <int NB>
void block_n_bf16(const MicroArgs& s, const bf16* a, const bf16* b, float* c,
                  bool acc, std::int64_t j0) {
  const std::int64_t kp = (s.k + 1) / 2;
  for (std::int64_t i = 0; i < s.m; i += 16) {
    const std::int64_t rem = s.m - i;
    const __mmask16 mask =
        rem >= 16 ? 0xffffu : static_cast<__mmask16>((1u << rem) - 1u);
    __m512 accv[NB];
    for (int jj = 0; jj < NB; ++jj) {
      accv[jj] = acc ? _mm512_maskz_loadu_ps(mask, c + i + (j0 + jj) * s.ldc)
                     : _mm512_setzero_ps();
    }
    for (std::int64_t p = 0; p < kp; ++p) {
      // 16 m-elements x 2 k-values = 32 bf16 = 16 x 32-bit granules.
      const __m512i packed = _mm512_maskz_loadu_epi32(
          mask, reinterpret_cast<const std::int32_t*>(a + (p * s.lda + i) * 2));
      __m512 a_even, a_odd;
      widen_pairs(packed, a_even, a_odd);
      for (int jj = 0; jj < NB; ++jj) {
        const bf16* bj = b + (j0 + jj) * s.ldb;
        const float b0 = bj[2 * p].to_f32();
        const float b1 = (2 * p + 1 < s.k) ? bj[2 * p + 1].to_f32() : 0.0f;
        accv[jj] = _mm512_fmadd_ps(a_even, _mm512_set1_ps(b0), accv[jj]);
        accv[jj] = _mm512_fmadd_ps(a_odd, _mm512_set1_ps(b1), accv[jj]);
      }
    }
    for (int jj = 0; jj < NB; ++jj) {
      _mm512_mask_storeu_ps(c + i + (j0 + jj) * s.ldc, mask, accv[jj]);
    }
  }
}

}  // namespace

void gemm_bf16_vnni_avx512(const MicroArgs& s, const bf16* a, const bf16* b,
                           float* c, bool acc) {
  std::int64_t j = 0;
  for (; j + 4 <= s.n; j += 4) block_n_bf16<4>(s, a, b, c, acc, j);
  for (; j + 2 <= s.n; j += 2) block_n_bf16<2>(s, a, b, c, acc, j);
  for (; j < s.n; ++j) block_n_bf16<1>(s, a, b, c, acc, j);
}

}  // namespace plt::tpp::detail
