#include "tpp/tpp_types.hpp"

#include <sstream>

namespace plt::tpp {

std::string UnaryDesc::key() const {
  std::ostringstream os;
  os << "u" << static_cast<int>(kind) << '_' << rows << 'x' << cols << '_'
     << ldi << '_' << ldo << '_' << dtype_name(in) << '_' << dtype_name(out)
     << '_' << alpha;
  return os.str();
}

std::string BinaryDesc::key() const {
  std::ostringstream os;
  os << "b" << static_cast<int>(kind) << '_' << rows << 'x' << cols << '_'
     << ldi0 << '_' << ldi1 << '_' << ldo << '_' << dtype_name(in0) << '_'
     << dtype_name(in1) << '_' << dtype_name(out) << "_bc"
     << static_cast<int>(bcast0);
  return os.str();
}

std::string BrgemmDesc::key() const {
  std::ostringstream os;
  os << "brgemm_" << m << 'x' << n << 'x' << k << "_ld" << lda << '_' << ldb
     << '_' << ldc << '_' << dtype_name(a) << dtype_name(b) << dtype_name(c)
     << "_beta" << beta << "_v" << static_cast<int>(variant) << "_al"
     << static_cast<int>(a_layout) << "_sa" << stride_a << "_sb" << stride_b;
  return os.str();
}

}  // namespace plt::tpp
