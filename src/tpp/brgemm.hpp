// Batch-Reduce GEMM (BRGEMM) TPP — the main tensor-contraction building
// block (Section II-A):
//
//   C = beta * C + sum_{i=0}^{brcount-1} A_i x B_i
//
// with the three address-generation variants of the paper: stride-based,
// address-based and offset-based. bf16 inputs accumulate in fp32; when C is
// stored in bf16 a per-thread fp32 scratch tile carries the accumulation
// across the whole batch and is converted once at the end.
#pragma once

#include <cstdint>
#include <memory>

#include "tpp/gemm_micro.hpp"
#include "tpp/tpp_types.hpp"

namespace plt::tpp {

class BrgemmTPP {
 public:
  explicit BrgemmTPP(BrgemmDesc desc);

  // Convenience constructor for the stride-based variant (Listing 1 usage).
  BrgemmTPP(std::int64_t m, std::int64_t n, std::int64_t k,
            std::int64_t stride_a, std::int64_t stride_b, float beta,
            DType a = DType::F32, DType b = DType::F32, DType c = DType::F32,
            ALayout a_layout = ALayout::kFlat);

  // Stride variant: A_i = a + i*stride_a, B_i = b + i*stride_b (elements).
  void operator()(const void* a, const void* b, void* c,
                  std::int64_t brcount) const;

  // Address variant: explicit pointer arrays of length brcount.
  void run_address(const void* const* a, const void* const* b, void* c,
                   std::int64_t brcount) const;

  // Offset variant: A_i = a + offs_a[i], B_i = b + offs_b[i] (elements).
  void run_offset(const void* a, const void* b, void* c,
                  const std::int64_t* offs_a, const std::int64_t* offs_b,
                  std::int64_t brcount) const;

  const BrgemmDesc& desc() const { return desc_; }
  double flops(std::int64_t brcount) const {
    return GemmFlops::of(desc_.m, desc_.n, desc_.k) *
           static_cast<double>(brcount);
  }

 private:
  template <typename NextA, typename NextB>
  void run_generic(NextA&& next_a, NextB&& next_b, void* c,
                   std::int64_t brcount) const;

  BrgemmDesc desc_;
  detail::F32Micro f32_micro_ = nullptr;
  detail::Bf16Micro bf16_micro_ = nullptr;
};

// Plain GEMM TPP: C = beta * C + A x B. Thin wrapper over a brcount=1
// BRGEMM, mirroring the TPP collection where GEMM is the degenerate case.
class GemmTPP {
 public:
  GemmTPP(std::int64_t m, std::int64_t n, std::int64_t k, float beta,
          DType a = DType::F32, DType b = DType::F32, DType c = DType::F32,
          ALayout a_layout = ALayout::kFlat,
          std::int64_t lda = 0, std::int64_t ldb = 0, std::int64_t ldc = 0);

  void operator()(const void* a, const void* b, void* c) const { impl_(a, b, c, 1); }
  const BrgemmDesc& desc() const { return impl_.desc(); }

 private:
  BrgemmTPP impl_;
};

}  // namespace plt::tpp
