// Tensor re-ordering TPPs: transpose, VNNI2 packing and blocked-layout
// copy-in/copy-out. The paper relies on these to put operands into the
// layouts the contraction hardware wants ("the TPP collection provides the
// corresponding reformatting primitives", Section III-A2).
#pragma once

#include <cstdint>

#include "common/bf16.hpp"

namespace plt::tpp {

// out(j, i) = in(i, j); in is rows x cols (ldi), out is cols x rows (ldo).
template <typename TI, typename TO>
void transpose_2d(const TI* in, TO* out, std::int64_t rows, std::int64_t cols,
                  std::int64_t ldi, std::int64_t ldo) {
  for (std::int64_t j = 0; j < cols; ++j)
    for (std::int64_t i = 0; i < rows; ++i)
      store_f32(&out[j + i * ldo], load_f32(&in[i + j * ldi]));
}

// Packs a flat col-major m x k bf16 block (lda) into VNNI2 layout
// [ceil(k/2)][m][2] (pair-major, m stride = m). Odd k is zero-padded.
void vnni2_pack(const bf16* in, bf16* out, std::int64_t m, std::int64_t k,
                std::int64_t lda);

// Inverse of vnni2_pack (used by tests and the unpack TPP).
void vnni2_unpack(const bf16* in, bf16* out, std::int64_t m, std::int64_t k,
                  std::int64_t lda_out);

// Number of bf16 elements a VNNI2-packed m x k block occupies.
inline std::int64_t vnni2_elems(std::int64_t m, std::int64_t k) {
  return ((k + 1) / 2) * m * 2;
}

// Copy a flat col-major M x K matrix (ld = M) into the paper's blocked
// layout A[Mb][Kb][bk][bm] (bm fastest), and back. M % bm == 0, K % bk == 0.
template <typename T>
void block_a_matrix(const T* flat, T* blocked, std::int64_t M, std::int64_t K,
                    std::int64_t bm, std::int64_t bk) {
  const std::int64_t Mb = M / bm, Kb = K / bk;
  for (std::int64_t im = 0; im < Mb; ++im)
    for (std::int64_t ik = 0; ik < Kb; ++ik)
      for (std::int64_t kk = 0; kk < bk; ++kk)
        for (std::int64_t mm = 0; mm < bm; ++mm)
          blocked[((im * Kb + ik) * bk + kk) * bm + mm] =
              flat[(im * bm + mm) + (ik * bk + kk) * M];
}

template <typename T>
void unblock_a_matrix(const T* blocked, T* flat, std::int64_t M,
                      std::int64_t K, std::int64_t bm, std::int64_t bk) {
  const std::int64_t Mb = M / bm, Kb = K / bk;
  for (std::int64_t im = 0; im < Mb; ++im)
    for (std::int64_t ik = 0; ik < Kb; ++ik)
      for (std::int64_t kk = 0; kk < bk; ++kk)
        for (std::int64_t mm = 0; mm < bm; ++mm)
          flat[(im * bm + mm) + (ik * bk + kk) * M] =
              blocked[((im * Kb + ik) * bk + kk) * bm + mm];
}

}  // namespace plt::tpp
