#include "tpp/equations.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace plt::tpp {

template <typename TI, typename TO>
void softmax_rows(const TI* in, TO* out, std::int64_t rows, std::int64_t cols,
                  std::int64_t ldi, std::int64_t ldo) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const TI* ri = in + r * ldi;
    TO* ro = out + r * ldo;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < cols; ++c) mx = std::max(mx, load_f32(&ri[c]));
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float e = std::exp(load_f32(&ri[c]) - mx);
      store_f32(&ro[c], e);
      sum += e;
    }
    const float inv = 1.0f / sum;
    for (std::int64_t c = 0; c < cols; ++c)
      store_f32(&ro[c], load_f32(&ro[c]) * inv);
  }
}

template void softmax_rows<float, float>(const float*, float*, std::int64_t,
                                         std::int64_t, std::int64_t,
                                         std::int64_t);
template void softmax_rows<bf16, bf16>(const bf16*, bf16*, std::int64_t,
                                       std::int64_t, std::int64_t,
                                       std::int64_t);
template void softmax_rows<float, bf16>(const float*, bf16*, std::int64_t,
                                        std::int64_t, std::int64_t,
                                        std::int64_t);

void softmax_scale_mask_rows(const float* in, float* out, std::int64_t rows,
                             std::int64_t cols, std::int64_t ldi,
                             std::int64_t ldo, float scale,
                             const std::int32_t* valid_cols) {
  const float kNegInf = -std::numeric_limits<float>::infinity();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ri = in + r * ldi;
    float* ro = out + r * ldo;
    const std::int64_t valid = valid_cols ? valid_cols[r] : cols;
    float mx = kNegInf;
    for (std::int64_t c = 0; c < valid; ++c) mx = std::max(mx, ri[c] * scale);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      if (c < valid) {
        const float e = std::exp(ri[c] * scale - mx);
        ro[c] = e;
        sum += e;
      } else {
        ro[c] = 0.0f;
      }
    }
    const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
    for (std::int64_t c = 0; c < valid; ++c) ro[c] *= inv;
  }
}

void softmax_rows_bwd(const float* grad_out, const float* out, float* grad_in,
                      std::int64_t rows, std::int64_t cols, std::int64_t ld) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* g = grad_out + r * ld;
    const float* o = out + r * ld;
    float* gi = grad_in + r * ld;
    float dot = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) dot += g[c] * o[c];
    for (std::int64_t c = 0; c < cols; ++c) gi[c] = (g[c] - dot) * o[c];
  }
}

void LayerNormFwd::operator()(const float* in, const float* gamma,
                              const float* beta, float* mean, float* var,
                              float* out, std::int64_t ld) const {
  if (ld == 0) ld = cols;
  const float inv_n = 1.0f / static_cast<float>(cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ri = in + r * ld;
    float* ro = out + r * ld;
    float mu = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) mu += ri[c];
    mu *= inv_n;
    float v = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float d = ri[c] - mu;
      v += d * d;
    }
    v *= inv_n;
    mean[r] = mu;
    var[r] = v;
    const float rstd = 1.0f / std::sqrt(v + eps);
    for (std::int64_t c = 0; c < cols; ++c)
      ro[c] = (ri[c] - mu) * rstd * gamma[c] + beta[c];
  }
}

void LayerNormBwd::operator()(const float* grad_out, const float* in,
                              const float* gamma, const float* mean,
                              const float* var, float* grad_in, float* dgamma,
                              float* dbeta, std::int64_t ld) const {
  if (ld == 0) ld = cols;
  const float inv_n = 1.0f / static_cast<float>(cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* g = grad_out + r * ld;
    const float* x = in + r * ld;
    float* gi = grad_in + r * ld;
    const float mu = mean[r];
    const float rstd = 1.0f / std::sqrt(var[r] + 1e-5f);
    // Two row reductions feed the classic layernorm backward formula.
    float sum_g = 0.0f, sum_gx = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float xhat = (x[c] - mu) * rstd;
      const float gg = g[c] * gamma[c];
      sum_g += gg;
      sum_gx += gg * xhat;
      dgamma[c] += g[c] * xhat;
      dbeta[c] += g[c];
    }
    for (std::int64_t c = 0; c < cols; ++c) {
      const float xhat = (x[c] - mu) * rstd;
      const float gg = g[c] * gamma[c];
      gi[c] = (gg - inv_n * (sum_g + xhat * sum_gx)) * rstd;
    }
  }
}

void DropoutFwd::operator()(const float* in, Xoshiro256& rng, float* out,
                            std::uint8_t* mask, std::int64_t ld) const {
  if (ld == 0) ld = cols;
  PLT_CHECK(p >= 0.0f && p < 1.0f, "dropout: p must be in [0, 1)");
  const float scale = 1.0f / (1.0f - p);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ri = in + r * ld;
    float* ro = out + r * ld;
    std::uint8_t* mr = mask + r * ld;
    for (std::int64_t c = 0; c < cols; ++c) {
      const bool keep = rng.next_float() >= p;
      mr[c] = keep ? 1 : 0;
      ro[c] = keep ? ri[c] * scale : 0.0f;
    }
  }
}

void DropoutBwd::operator()(const float* grad_out, const std::uint8_t* mask,
                            float* grad_in, std::int64_t ld) const {
  if (ld == 0) ld = cols;
  const float scale = 1.0f / (1.0f - p);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* g = grad_out + r * ld;
    const std::uint8_t* mr = mask + r * ld;
    float* gi = grad_in + r * ld;
    for (std::int64_t c = 0; c < cols; ++c)
      gi[c] = mr[c] ? g[c] * scale : 0.0f;
  }
}

}  // namespace plt::tpp
