// Internal microkernel entry points for the (BR)GEMM TPP.
//
// One entry per ISA level, all with identical semantics:
//   C(m x n, col-major ldc) {=, +=} A(m x k) * B(k x n)
// where `acc` selects overwrite (false) vs accumulate (true). A is col-major
// (lda) in the flat layout, or VNNI2-packed ([ceil(k/2)][m][2], lda = m
// stride in pairs) for the low-precision fast paths. B is always col-major
// (ldb). bf16 inputs accumulate into an fp32 C tile; the caller converts.
//
// Declarations are unconditional; definitions for the vector paths live in
// per-ISA translation units compiled with the matching -m flags, and the
// selector in brgemm.cpp only references them when the corresponding
// PLT_KERNELS_* macro is on (the same macros gate cpu_features.cpp, so a
// kernel is referenced iff it is compiled).
#pragma once

#include <cstdint>

#include "common/bf16.hpp"

namespace plt::tpp::detail {

struct MicroArgs {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::int64_t lda = 0;
  std::int64_t ldb = 0;
  std::int64_t ldc = 0;
};

using F32Micro = void (*)(const MicroArgs&, const float* a, const float* b,
                          float* c, bool acc);
using Bf16Micro = void (*)(const MicroArgs&, const bf16* a, const bf16* b,
                           float* c, bool acc);

// Scalar reference paths (always available; numerics ground truth).
void gemm_f32_ref(const MicroArgs&, const float*, const float*, float*, bool);
void gemm_bf16_flat_ref(const MicroArgs&, const bf16*, const bf16*, float*, bool);
void gemm_bf16_vnni_ref(const MicroArgs&, const bf16*, const bf16*, float*, bool);

// AVX2 + FMA.
void gemm_f32_avx2(const MicroArgs&, const float*, const float*, float*, bool);

// AVX-512 (F/BW/VL/DQ).
void gemm_f32_avx512(const MicroArgs&, const float*, const float*, float*, bool);
void gemm_bf16_vnni_avx512(const MicroArgs&, const bf16*, const bf16*, float*, bool);

// AVX-512 BF16 (vdpbf16ps).
void gemm_bf16_vnni_avx512bf16(const MicroArgs&, const bf16*, const bf16*, float*, bool);

}  // namespace plt::tpp::detail
