#include "tpp/unary.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "tpp/kernel_cache.hpp"

namespace plt::tpp {

float gelu_fwd_scalar(float x) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
  const float c = 0.7978845608028654f;
  const float x3 = x * x * x;
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x3)));
}

float gelu_bwd_scalar(float grad, float x) {
  const float c = 0.7978845608028654f;
  const float x2 = x * x;
  const float t = std::tanh(c * (x + 0.044715f * x * x2));
  const float dt = (1.0f - t * t) * c * (1.0f + 3.0f * 0.044715f * x2);
  return grad * (0.5f * (1.0f + t) + 0.5f * x * dt);
}

float unary_scalar_op(UnaryKind kind, float x, float alpha) {
  switch (kind) {
    case UnaryKind::kZero: return 0.0f;
    case UnaryKind::kCopy: return x;
    case UnaryKind::kRelu: return x > 0.0f ? x : 0.0f;
    case UnaryKind::kGelu: return gelu_fwd_scalar(x);
    case UnaryKind::kTanh: return std::tanh(x);
    case UnaryKind::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
    case UnaryKind::kExp: return std::exp(x);
    case UnaryKind::kSqrt: return std::sqrt(x);
    case UnaryKind::kRsqrt: return 1.0f / std::sqrt(x);
    case UnaryKind::kReciprocal: return 1.0f / x;
    case UnaryKind::kNegate: return -x;
    case UnaryKind::kSquare: return x * x;
    case UnaryKind::kAbs: return std::fabs(x);
    case UnaryKind::kScale: return alpha * x;
    case UnaryKind::kLeakyRelu: return x > 0.0f ? x : alpha * x;
    default: break;
  }
  PLT_CHECK(false, "unary_scalar_op: kind has no scalar elementwise form");
  return 0.0f;
}

namespace {

bool is_reduction(UnaryKind k) {
  return k == UnaryKind::kReduceSumRows || k == UnaryKind::kReduceSumCols ||
         k == UnaryKind::kReduceMaxRows || k == UnaryKind::kReduceMaxCols;
}

[[maybe_unused]] bool needs_extra(UnaryKind k) {
  return k == UnaryKind::kReluBwd || k == UnaryKind::kGeluBwd;
}

template <typename TI, typename TO>
void run_elementwise(const UnaryDesc& d, const void* in_v, void* out_v,
                     const void* extra_v) {
  const TI* in = static_cast<const TI*>(in_v);
  TO* out = static_cast<TO*>(out_v);
  const TI* extra = static_cast<const TI*>(extra_v);
  const auto kind = d.kind;
  if (kind == UnaryKind::kZero) {
    // zero_tpp never reads its input (callers may pass nullptr, Listing 1).
    for (std::int64_t j = 0; j < d.cols; ++j) {
      TO* co = out + j * d.ldo;
      for (std::int64_t i = 0; i < d.rows; ++i) store_f32(&co[i], 0.0f);
    }
    return;
  }
  for (std::int64_t j = 0; j < d.cols; ++j) {
    const TI* ci = in + j * d.ldi;
    TO* co = out + j * d.ldo;
    const TI* ce = extra ? extra + j * d.ldi : nullptr;
    for (std::int64_t i = 0; i < d.rows; ++i) {
      float v;
      if (kind == UnaryKind::kReluBwd) {
        v = load_f32(&ce[i]) > 0.0f ? load_f32(&ci[i]) : 0.0f;
      } else if (kind == UnaryKind::kGeluBwd) {
        v = gelu_bwd_scalar(load_f32(&ci[i]), load_f32(&ce[i]));
      } else {
        v = unary_scalar_op(kind, load_f32(&ci[i]), d.alpha);
      }
      store_f32(&co[i], v);
    }
  }
}

template <typename TI, typename TO>
void run_reduction(const UnaryDesc& d, const void* in_v, void* out_v) {
  const TI* in = static_cast<const TI*>(in_v);
  TO* out = static_cast<TO*>(out_v);
  const float kNegInf = -std::numeric_limits<float>::infinity();
  switch (d.kind) {
    case UnaryKind::kReduceSumRows:
      for (std::int64_t j = 0; j < d.cols; ++j) {
        float acc = 0.0f;
        for (std::int64_t i = 0; i < d.rows; ++i) acc += load_f32(&in[i + j * d.ldi]);
        store_f32(&out[j], acc);
      }
      break;
    case UnaryKind::kReduceMaxRows:
      for (std::int64_t j = 0; j < d.cols; ++j) {
        float acc = kNegInf;
        for (std::int64_t i = 0; i < d.rows; ++i)
          acc = std::max(acc, load_f32(&in[i + j * d.ldi]));
        store_f32(&out[j], acc);
      }
      break;
    case UnaryKind::kReduceSumCols:
      for (std::int64_t i = 0; i < d.rows; ++i) {
        float acc = 0.0f;
        for (std::int64_t j = 0; j < d.cols; ++j) acc += load_f32(&in[i + j * d.ldi]);
        store_f32(&out[i], acc);
      }
      break;
    case UnaryKind::kReduceMaxCols:
      for (std::int64_t i = 0; i < d.rows; ++i) {
        float acc = kNegInf;
        for (std::int64_t j = 0; j < d.cols; ++j)
          acc = std::max(acc, load_f32(&in[i + j * d.ldi]));
        store_f32(&out[i], acc);
      }
      break;
    default:
      PLT_CHECK(false, "not a reduction kind");
  }
}

using UnaryFn = std::function<void(const void*, void*, const void*)>;

template <typename TI, typename TO>
UnaryFn make_typed(const UnaryDesc& d) {
  if (is_reduction(d.kind)) {
    return [d](const void* in, void* out, const void*) {
      run_reduction<TI, TO>(d, in, out);
    };
  }
  return [d](const void* in, void* out, const void* extra) {
    run_elementwise<TI, TO>(d, in, out, extra);
  };
}

UnaryFn make_kernel(const UnaryDesc& d) {
  if (d.in == DType::F32 && d.out == DType::F32) return make_typed<float, float>(d);
  if (d.in == DType::BF16 && d.out == DType::BF16) return make_typed<bf16, bf16>(d);
  if (d.in == DType::F32 && d.out == DType::BF16) return make_typed<float, bf16>(d);
  if (d.in == DType::BF16 && d.out == DType::F32) return make_typed<bf16, float>(d);
  PLT_CHECK(false, "unary TPP: unsupported dtype combination");
  return {};
}

KernelCache<UnaryFn>& cache() {
  static KernelCache<UnaryFn> c;
  return c;
}

}  // namespace

UnaryTPP::UnaryTPP(UnaryDesc desc) : desc_(desc) {
  PLT_CHECK(desc_.rows > 0 && desc_.cols > 0, "unary TPP: empty shape");
  if (desc_.ldi == 0) desc_.ldi = desc_.rows;
  if (desc_.ldo == 0) desc_.ldo = desc_.rows;
  PLT_CHECK(desc_.ldi >= desc_.rows && desc_.ldo >= desc_.rows,
            "unary TPP: leading dimension smaller than rows");
  const UnaryDesc d = desc_;
  fn_ = cache().get_or_create(d.key(), [d] {
    return std::make_shared<UnaryFn>(make_kernel(d));
  });
}

UnaryTPP::UnaryTPP(UnaryKind kind, std::int64_t rows, std::int64_t cols,
                   DType in, DType out)
    : UnaryTPP(UnaryDesc{kind, rows, cols, 0, 0, in, out, 1.0f}) {}

void UnaryTPP::operator()(const void* in, void* out, const void* extra) const {
  PLT_DCHECK(!needs_extra(desc_.kind) || extra != nullptr,
             "unary TPP: kind requires the saved forward input");
  (*fn_)(in, out, extra);
}

}  // namespace plt::tpp
