// "Equation" TPPs: small fused operator DAGs the paper uses inside the BERT
// modules (softmax blocks, layernorm-equation, dropout with RNG state;
// Listing 6 and Section IV-A). These operate on row-major 2D tiles
// (rows = tokens, cols = features) because that is how the DL workloads
// slice their activations.
#pragma once

#include <cstdint>

#include "common/bf16.hpp"
#include "common/rng.hpp"

namespace plt::tpp {

// Row-wise numerically-stable softmax: out[r, :] = softmax(in[r, :]).
// Row-major: element (r, c) at p[r * ld + c].
template <typename TI, typename TO>
void softmax_rows(const TI* in, TO* out, std::int64_t rows, std::int64_t cols,
                  std::int64_t ldi, std::int64_t ldo);

// Fused scale+mask+softmax used by attention: logits are multiplied by
// `scale` and positions c >= valid_cols[r] are masked to -inf before the
// softmax (nullptr valid_cols => no masking).
void softmax_scale_mask_rows(const float* in, float* out, std::int64_t rows,
                             std::int64_t cols, std::int64_t ldi,
                             std::int64_t ldo, float scale,
                             const std::int32_t* valid_cols);

// Layer normalization over each row (the layernorm_tpp_eqn of Listing 6).
// mean/var (rows) are stored for the backward pass.
struct LayerNormFwd {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  float eps = 1e-5f;

  void operator()(const float* in, const float* gamma, const float* beta,
                  float* mean, float* var, float* out,
                  std::int64_t ld = 0) const;
};

struct LayerNormBwd {
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  // dgamma/dbeta are accumulated (caller zeroes them before the first tile).
  void operator()(const float* grad_out, const float* in, const float* gamma,
                  const float* mean, const float* var, float* grad_in,
                  float* dgamma, float* dbeta, std::int64_t ld = 0) const;
};

// Dropout with explicit RNG state and a saved byte mask (1 = kept), matching
// the dropout_tpp(get_rng_state()) call of Listing 6. Scale is 1/(1-p).
struct DropoutFwd {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  float p = 0.0f;

  void operator()(const float* in, Xoshiro256& rng, float* out,
                  std::uint8_t* mask, std::int64_t ld = 0) const;
};

struct DropoutBwd {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  float p = 0.0f;

  void operator()(const float* grad_out, const std::uint8_t* mask,
                  float* grad_in, std::int64_t ld = 0) const;
};

// Softmax backward over rows: grad_in = (grad_out - sum(grad_out*out)) * out.
void softmax_rows_bwd(const float* grad_out, const float* out, float* grad_in,
                      std::int64_t rows, std::int64_t cols, std::int64_t ld);

}  // namespace plt::tpp
