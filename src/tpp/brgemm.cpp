#include "tpp/brgemm.hpp"

#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/cpu_features.hpp"

namespace plt::tpp {

namespace {

detail::F32Micro pick_f32_micro() {
  switch (effective_isa()) {
#if defined(PLT_KERNELS_AVX512)
    case IsaLevel::kAVX512BF16:
    case IsaLevel::kAVX512:
      return detail::gemm_f32_avx512;
#endif
#if defined(PLT_KERNELS_AVX2)
    case IsaLevel::kAVX2:
      return detail::gemm_f32_avx2;
#endif
    default:
      return detail::gemm_f32_ref;
  }
}

detail::Bf16Micro pick_bf16_vnni_micro() {
  switch (effective_isa()) {
#if defined(PLT_KERNELS_AVX512BF16)
    case IsaLevel::kAVX512BF16:
      return detail::gemm_bf16_vnni_avx512bf16;
#endif
#if defined(PLT_KERNELS_AVX512)
    case IsaLevel::kAVX512:
#if !defined(PLT_KERNELS_AVX512BF16)
    case IsaLevel::kAVX512BF16:
#endif
      return detail::gemm_bf16_vnni_avx512;
#endif
    default:
      return detail::gemm_bf16_vnni_ref;
  }
}

// Per-thread fp32 scratch tile used when C is stored in bf16.
float* scratch_tile(std::size_t elems) {
  thread_local std::vector<float> buf;
  if (buf.size() < elems) buf.resize(elems);
  return buf.data();
}

}  // namespace

BrgemmTPP::BrgemmTPP(BrgemmDesc desc) : desc_(desc) {
  PLT_CHECK(desc_.m > 0 && desc_.n > 0 && desc_.k > 0, "brgemm: empty shape");
  PLT_CHECK(desc_.beta == 0.0f || desc_.beta == 1.0f,
            "brgemm: beta must be 0 or 1");
  if (desc_.lda == 0) desc_.lda = desc_.m;
  if (desc_.ldb == 0) desc_.ldb = desc_.k;
  if (desc_.ldc == 0) desc_.ldc = desc_.m;
  const bool f32_all = desc_.a == DType::F32 && desc_.b == DType::F32 &&
                       (desc_.c == DType::F32 || desc_.c == DType::BF16);
  const bool bf16_in = desc_.a == DType::BF16 && desc_.b == DType::BF16 &&
                       (desc_.c == DType::F32 || desc_.c == DType::BF16);
  PLT_CHECK(f32_all || bf16_in, "brgemm: unsupported dtype combination");
  if (f32_all) {
    PLT_CHECK(desc_.a_layout == ALayout::kFlat,
              "brgemm: VNNI layout is a low-precision feature");
    f32_micro_ = pick_f32_micro();
  } else {
    bf16_micro_ = desc_.a_layout == ALayout::kVnni2
                      ? pick_bf16_vnni_micro()
                      : detail::gemm_bf16_flat_ref;
  }
}

BrgemmTPP::BrgemmTPP(std::int64_t m, std::int64_t n, std::int64_t k,
                     std::int64_t stride_a, std::int64_t stride_b, float beta,
                     DType a, DType b, DType c, ALayout a_layout)
    : BrgemmTPP(BrgemmDesc{m, n, k, 0, 0, 0, a, b, c, beta,
                           BrgemmVariant::kStride, a_layout, stride_a,
                           stride_b}) {}

template <typename NextA, typename NextB>
void BrgemmTPP::run_generic(NextA&& next_a, NextB&& next_b, void* c,
                            std::int64_t brcount) const {
  const detail::MicroArgs args{desc_.m, desc_.n, desc_.k,
                               desc_.lda, desc_.ldb, desc_.ldc};
  const bool c_is_bf16 = desc_.c == DType::BF16;

  if (brcount <= 0) {
    if (desc_.beta == 0.0f) {
      // libxsmm semantics: beta=0 with an empty batch still zeroes C.
      if (c_is_bf16) {
        bf16* cp = static_cast<bf16*>(c);
        for (std::int64_t j = 0; j < desc_.n; ++j)
          std::memset(static_cast<void*>(cp + j * desc_.ldc), 0,
                      sizeof(bf16) * desc_.m);
      } else {
        float* cp = static_cast<float*>(c);
        for (std::int64_t j = 0; j < desc_.n; ++j)
          std::memset(cp + j * desc_.ldc, 0, sizeof(float) * desc_.m);
      }
    }
    return;
  }

  float* cacc = nullptr;
  std::int64_t ldc_acc = desc_.ldc;
  if (c_is_bf16) {
    cacc = scratch_tile(static_cast<std::size_t>(desc_.m) * desc_.n);
    ldc_acc = desc_.m;
    const bf16* cp = static_cast<const bf16*>(c);
    if (desc_.beta == 1.0f) {
      for (std::int64_t j = 0; j < desc_.n; ++j)
        for (std::int64_t i = 0; i < desc_.m; ++i)
          cacc[i + j * ldc_acc] = cp[i + j * desc_.ldc].to_f32();
    }
  } else {
    cacc = static_cast<float*>(c);
  }

  detail::MicroArgs acc_args = args;
  acc_args.ldc = ldc_acc;

  for (std::int64_t i = 0; i < brcount; ++i) {
    // The first term overwrites when beta==0 (for bf16 C the scratch tile is
    // only pre-seeded when beta==1, so the same rule applies to it).
    const bool acc = (i > 0) || desc_.beta == 1.0f;
    if (f32_micro_ != nullptr) {
      f32_micro_(acc_args, static_cast<const float*>(next_a(i)),
                 static_cast<const float*>(next_b(i)), cacc, acc);
    } else {
      bf16_micro_(acc_args, static_cast<const bf16*>(next_a(i)),
                  static_cast<const bf16*>(next_b(i)), cacc, acc);
    }
  }

  if (c_is_bf16) {
    bf16* cp = static_cast<bf16*>(c);
    for (std::int64_t j = 0; j < desc_.n; ++j)
      for (std::int64_t i = 0; i < desc_.m; ++i)
        cp[i + j * desc_.ldc] = bf16::from_f32(cacc[i + j * ldc_acc]);
  }
}

void BrgemmTPP::operator()(const void* a, const void* b, void* c,
                           std::int64_t brcount) const {
  PLT_DCHECK(desc_.variant == BrgemmVariant::kStride,
             "brgemm: operator() is the stride variant");
  const std::size_t esz_a = dtype_size(desc_.a);
  const std::size_t esz_b = dtype_size(desc_.b);
  const char* ap = static_cast<const char*>(a);
  const char* bp = static_cast<const char*>(b);
  run_generic(
      [&](std::int64_t i) -> const void* {
        return ap + static_cast<std::size_t>(i) * desc_.stride_a * esz_a;
      },
      [&](std::int64_t i) -> const void* {
        return bp + static_cast<std::size_t>(i) * desc_.stride_b * esz_b;
      },
      c, brcount);
}

void BrgemmTPP::run_address(const void* const* a, const void* const* b,
                            void* c, std::int64_t brcount) const {
  run_generic([&](std::int64_t i) { return a[i]; },
              [&](std::int64_t i) { return b[i]; }, c, brcount);
}

void BrgemmTPP::run_offset(const void* a, const void* b, void* c,
                           const std::int64_t* offs_a,
                           const std::int64_t* offs_b,
                           std::int64_t brcount) const {
  const std::size_t esz_a = dtype_size(desc_.a);
  const std::size_t esz_b = dtype_size(desc_.b);
  const char* ap = static_cast<const char*>(a);
  const char* bp = static_cast<const char*>(b);
  run_generic(
      [&](std::int64_t i) -> const void* {
        return ap + static_cast<std::size_t>(offs_a[i]) * esz_a;
      },
      [&](std::int64_t i) -> const void* {
        return bp + static_cast<std::size_t>(offs_b[i]) * esz_b;
      },
      c, brcount);
}

GemmTPP::GemmTPP(std::int64_t m, std::int64_t n, std::int64_t k, float beta,
                 DType a, DType b, DType c, ALayout a_layout, std::int64_t lda,
                 std::int64_t ldb, std::int64_t ldc)
    : impl_(BrgemmDesc{m, n, k, lda, ldb, ldc, a, b, c, beta,
                       BrgemmVariant::kStride, a_layout, 0, 0}) {}

}  // namespace plt::tpp
