// Descriptor types for the Tensor Processing Primitive (TPP) backend.
//
// A TPP is configured once from a descriptor (shape, leading dimensions,
// datatypes, flags) and then invoked many times — the same contract as
// libxsmm's dispatch API that the paper builds on. Construction resolves the
// descriptor against the running CPU's ISA level and memoizes the resulting
// kernel in a process-wide cache (see kernel_cache.hpp), standing in for the
// machine-code JIT of the original backend.
//
// Conventions:
//  * 2D operands are column-major: element (i, j) lives at p[i + j * ld]
//    with 0 <= i < rows ("m") and 0 <= j < cols ("n"). The paper's blocked
//    tensors (A[Mb][Kb][bk][bm] etc.) map onto this directly.
//  * bf16 tensors always accumulate in fp32.
#pragma once

#include <cstdint>
#include <string>

#include "common/bf16.hpp"

namespace plt::tpp {

enum class UnaryKind : std::uint8_t {
  kZero,
  kCopy,        // also performs dtype conversion when in/out dtypes differ
  kRelu,
  kReluBwd,     // grad-in masked by sign of the saved forward input
  kGelu,        // tanh approximation (the one DL frameworks use)
  kGeluBwd,
  kTanh,
  kSigmoid,
  kExp,
  kSqrt,
  kRsqrt,
  kReciprocal,
  kNegate,
  kSquare,
  kAbs,
  kScale,            // out = alpha * in
  kLeakyRelu,        // out = in > 0 ? in : alpha * in
  kReduceSumRows,    // out[j]   = sum_i in(i, j)   (out is 1 x cols)
  kReduceSumCols,    // out[i]   = sum_j in(i, j)   (out is rows x 1)
  kReduceMaxRows,    // out[j]   = max_i in(i, j)
  kReduceMaxCols,    // out[i]   = max_j in(i, j)
};

enum class BinaryKind : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMax,
  kMin,
};

// Broadcast semantics of input 0 of a binary TPP (input 1 is always full
// rows x cols). kRow broadcasts a 1 x cols operand down the rows (bias add);
// kCol broadcasts a rows x 1 operand across columns; kScalar a single value.
enum class Broadcast : std::uint8_t { kNone, kRow, kCol, kScalar };

struct UnaryDesc {
  UnaryKind kind = UnaryKind::kCopy;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t ldi = 0;   // defaults to rows when 0
  std::int64_t ldo = 0;   // defaults to rows when 0
  DType in = DType::F32;
  DType out = DType::F32;
  float alpha = 1.0f;     // kScale / kLeakyRelu parameter

  std::string key() const;
};

struct BinaryDesc {
  BinaryKind kind = BinaryKind::kAdd;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t ldi0 = 0;
  std::int64_t ldi1 = 0;
  std::int64_t ldo = 0;
  DType in0 = DType::F32;
  DType in1 = DType::F32;
  DType out = DType::F32;
  Broadcast bcast0 = Broadcast::kNone;

  std::string key() const;
};

// Batch-reduce GEMM: C(m x n) = beta * C + sum_i A_i(m x k) * B_i(k x n).
// The three address-generation variants of the paper/libxsmm are supported:
//   kStride : A_i = A_0 + i * stride_a, likewise for B (strides in ELEMENTS)
//   kAddress: explicit pointer arrays
//   kOffset : A_i = A_0 + offs_a[i], B_i = B_0 + offs_b[i] (element offsets)
enum class BrgemmVariant : std::uint8_t { kStride, kAddress, kOffset };

// Layout of the A operand for low-precision kernels. kVnni2 packs pairs of
// consecutive k values per m element: A[k/2][m][2] — the layout the
// AVX-512-BF16 dot-product instruction consumes (and AMX/MMLA analogues).
enum class ALayout : std::uint8_t { kFlat, kVnni2 };

struct BrgemmDesc {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::int64_t lda = 0;  // defaults: m (flat) — for kVnni2 lda is the m stride in PAIRS, default m
  std::int64_t ldb = 0;  // defaults: k
  std::int64_t ldc = 0;  // defaults: m
  DType a = DType::F32;
  DType b = DType::F32;
  DType c = DType::F32;
  float beta = 1.0f;           // 0 => overwrite C, 1 => accumulate
  BrgemmVariant variant = BrgemmVariant::kStride;
  ALayout a_layout = ALayout::kFlat;
  std::int64_t stride_a = 0;   // kStride variant, in elements
  std::int64_t stride_b = 0;

  std::string key() const;
};

struct GemmFlops {
  static double of(std::int64_t m, std::int64_t n, std::int64_t k) {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
};

}  // namespace plt::tpp
