#include "tpp/binary.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "tpp/kernel_cache.hpp"

namespace plt::tpp {

float binary_scalar_op(BinaryKind kind, float a, float b) {
  switch (kind) {
    case BinaryKind::kAdd: return a + b;
    case BinaryKind::kSub: return a - b;
    case BinaryKind::kMul: return a * b;
    case BinaryKind::kDiv: return a / b;
    case BinaryKind::kMax: return std::max(a, b);
    case BinaryKind::kMin: return std::min(a, b);
  }
  return 0.0f;
}

namespace {

using BinaryFn = std::function<void(const void*, const void*, void*)>;

template <typename T0, typename T1, typename TO>
void run(const BinaryDesc& d, const void* in0_v, const void* in1_v,
         void* out_v) {
  const T0* in0 = static_cast<const T0*>(in0_v);
  const T1* in1 = static_cast<const T1*>(in1_v);
  TO* out = static_cast<TO*>(out_v);
  for (std::int64_t j = 0; j < d.cols; ++j) {
    const T1* c1 = in1 + j * d.ldi1;
    TO* co = out + j * d.ldo;
    for (std::int64_t i = 0; i < d.rows; ++i) {
      float a;
      switch (d.bcast0) {
        case Broadcast::kNone:   a = load_f32(&in0[i + j * d.ldi0]); break;
        case Broadcast::kRow:    a = load_f32(&in0[j]); break;   // 1 x cols
        case Broadcast::kCol:    a = load_f32(&in0[i]); break;   // rows x 1
        case Broadcast::kScalar: a = load_f32(&in0[0]); break;
        default: a = 0.0f; break;
      }
      store_f32(&co[i], binary_scalar_op(d.kind, a, load_f32(&c1[i])));
    }
  }
}

template <typename T0, typename T1>
BinaryFn make_out(const BinaryDesc& d) {
  switch (d.out) {
    case DType::F32:
      return [d](const void* a, const void* b, void* o) { run<T0, T1, float>(d, a, b, o); };
    case DType::BF16:
      return [d](const void* a, const void* b, void* o) { run<T0, T1, bf16>(d, a, b, o); };
    default: break;
  }
  PLT_CHECK(false, "binary TPP: unsupported output dtype");
  return {};
}

template <typename T0>
BinaryFn make_in1(const BinaryDesc& d) {
  switch (d.in1) {
    case DType::F32: return make_out<T0, float>(d);
    case DType::BF16: return make_out<T0, bf16>(d);
    default: break;
  }
  PLT_CHECK(false, "binary TPP: unsupported in1 dtype");
  return {};
}

BinaryFn make_kernel(const BinaryDesc& d) {
  switch (d.in0) {
    case DType::F32: return make_in1<float>(d);
    case DType::BF16: return make_in1<bf16>(d);
    default: break;
  }
  PLT_CHECK(false, "binary TPP: unsupported in0 dtype");
  return {};
}

KernelCache<BinaryFn>& cache() {
  static KernelCache<BinaryFn> c;
  return c;
}

}  // namespace

BinaryTPP::BinaryTPP(BinaryDesc desc) : desc_(desc) {
  PLT_CHECK(desc_.rows > 0 && desc_.cols > 0, "binary TPP: empty shape");
  if (desc_.ldi0 == 0) desc_.ldi0 = desc_.rows;
  if (desc_.ldi1 == 0) desc_.ldi1 = desc_.rows;
  if (desc_.ldo == 0) desc_.ldo = desc_.rows;
  const BinaryDesc d = desc_;
  fn_ = cache().get_or_create(d.key(), [d] {
    return std::make_shared<BinaryFn>(make_kernel(d));
  });
}

BinaryTPP::BinaryTPP(BinaryKind kind, std::int64_t rows, std::int64_t cols,
                     DType dt, Broadcast bcast0)
    : BinaryTPP(BinaryDesc{kind, rows, cols, 0, 0, 0, dt, dt, dt, bcast0}) {}

void BinaryTPP::operator()(const void* in0, const void* in1, void* out) const {
  (*fn_)(in0, in1, out);
}

}  // namespace plt::tpp
