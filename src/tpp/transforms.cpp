#include "tpp/transforms.hpp"

#include <cstring>

namespace plt::tpp {

void vnni2_pack(const bf16* in, bf16* out, std::int64_t m, std::int64_t k,
                std::int64_t lda) {
  const std::int64_t kp = (k + 1) / 2;
  for (std::int64_t p = 0; p < kp; ++p) {
    const bool has_hi = 2 * p + 1 < k;
    for (std::int64_t i = 0; i < m; ++i) {
      bf16* o = out + (p * m + i) * 2;
      o[0] = in[i + (2 * p) * lda];
      o[1] = has_hi ? in[i + (2 * p + 1) * lda] : bf16{};
    }
  }
}

void vnni2_unpack(const bf16* in, bf16* out, std::int64_t m, std::int64_t k,
                  std::int64_t lda_out) {
  const std::int64_t kp = (k + 1) / 2;
  for (std::int64_t p = 0; p < kp; ++p) {
    for (std::int64_t i = 0; i < m; ++i) {
      const bf16* s = in + (p * m + i) * 2;
      out[i + (2 * p) * lda_out] = s[0];
      if (2 * p + 1 < k) out[i + (2 * p + 1) * lda_out] = s[1];
    }
  }
}

}  // namespace plt::tpp
