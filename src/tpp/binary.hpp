// Binary TPPs: elementwise combine of two 2D tensors with optional broadcast
// of input 0 (bias-add is BinaryKind::kAdd with Broadcast::kRow).
#pragma once

#include <functional>
#include <memory>

#include "tpp/tpp_types.hpp"

namespace plt::tpp {

class BinaryTPP {
 public:
  explicit BinaryTPP(BinaryDesc desc);
  BinaryTPP(BinaryKind kind, std::int64_t rows, std::int64_t cols,
            DType dt = DType::F32, Broadcast bcast0 = Broadcast::kNone);

  // out(i,j) = op(in0(i,j) [broadcast], in1(i,j))
  void operator()(const void* in0, const void* in1, void* out) const;

  const BinaryDesc& desc() const { return desc_; }

 private:
  BinaryDesc desc_;
  std::shared_ptr<std::function<void(const void*, const void*, void*)>> fn_;
};

float binary_scalar_op(BinaryKind kind, float a, float b);

}  // namespace plt::tpp
