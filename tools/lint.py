#!/usr/bin/env python3
"""Repo-invariant linter (CI static-analysis job).

Checks invariants the C++ compiler cannot express:

  R1  No raw std::getenv / getenv outside src/common/env.cpp. Every knob
      must go through the env_* helpers so malformed values warn instead of
      being silently swallowed.
  R2  No naked `throw` inside a pool-region lambda (parallel_region(...) /
      run_on(...) bodies in src/). An exception unwinding a pool worker
      calls std::terminate; work must throw via PLT_CHECK/PLT_ENSURE from
      code the region's firewall wraps, or return Status.
  R3  plt::Status and plt::StatusOr stay [[nodiscard]] in
      src/common/status.hpp (the compiler enforces call sites; this guards
      the annotation itself against regressing).

Exit status: 0 clean, 1 findings (each printed as file:line: message).
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

findings = []


def report(path, lineno, msg):
    findings.append(f"{path.relative_to(REPO)}:{lineno}: {msg}")


def strip_comments(text):
    """Blanks out // and /* */ comments and string literals, preserving
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("str", "chr"):
            close = '"' if state == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == close:
                state = "code"
            out.append(" " if ch != "\n" else "\n")
        i += 1
    return "".join(out)


GETENV_RE = re.compile(r"\b(?:std::)?getenv\s*\(")
REGION_RE = re.compile(r"\b(?:parallel_region|run_on)\s*\(")
THROW_RE = re.compile(r"\bthrow\b")
GETENV_ALLOWED = {SRC / "common" / "env.cpp"}


def check_getenv(path, code):
    if path in GETENV_ALLOWED:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if GETENV_RE.search(line):
            report(path, lineno,
                   "raw getenv outside src/common/env.cpp — use the "
                   "common::env_* helpers")


def region_body_span(code, open_paren):
    """Returns (start, end) of the balanced argument list opened at
    open_paren (index of '(')."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return open_paren, i
    return open_paren, len(code)


def check_region_throws(path, code):
    for m in REGION_RE.finditer(code):
        start, end = region_body_span(code, m.end() - 1)
        body = code[start:end]
        for tm in THROW_RE.finditer(body):
            lineno = code.count("\n", 0, start + tm.start()) + 1
            report(path, lineno,
                   "naked `throw` inside a pool-region lambda — an "
                   "exception unwinding a pool worker terminates the "
                   "process; return Status or throw outside the region")


def check_nodiscard():
    status_hpp = SRC / "common" / "status.hpp"
    text = status_hpp.read_text()
    for cls in ("class [[nodiscard]] Status", "class [[nodiscard]] StatusOr"):
        if cls not in text:
            report(status_hpp, 1,
                   f"`{cls}` annotation missing — Status/StatusOr must stay "
                   "[[nodiscard]]")


def main():
    for path in sorted(SRC.rglob("*.cpp")) + sorted(SRC.rglob("*.hpp")):
        code = strip_comments(path.read_text())
        check_getenv(path, code)
        check_region_throws(path, code)
    check_nodiscard()
    if findings:
        for f in findings:
            print(f)
        print(f"lint.py: {len(findings)} finding(s)")
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
