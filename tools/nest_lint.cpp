// nest_lint: sweeps the static schedule verifier (src/analysis/) over every
// loop-nest plan the model catalogue registers, for the canonical team sizes
// {1, 2, 4, 8}, and prints a conformance table. Exit status 0 means every
// plan proved coverage, race-freedom (against its attached access maps) and
// interpreter/JIT schedule equivalence.
//
//   nest_lint              full catalogue sweep
//   nest_lint --self-test  mutation self-test (verifier must flag all three
//                          corruption kinds on a known-good schedule)
//   nest_lint --no-backend skip JIT equivalence (no compiler invocations)
//
// The catalogue instantiates every model family at CI-friendly sizes: the
// kernels register plans (with access maps) by construction alone; the
// serving sessions additionally run their construction-time warmup, which
// registers the dl layers' real per-token-count plans. The sweep then walks
// the process-wide plan cache, so anything newly registered is linted
// without touching this file's sweep loop.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "dl/bert.hpp"
#include "dl/llm.hpp"
#include "dl/sparse_fc.hpp"
#include "kernels/conv_kernel.hpp"
#include "kernels/gemm_kernel.hpp"
#include "kernels/spmm_kernel.hpp"
#include "parlooper/jit_backend.hpp"
#include "parlooper/threaded_loop.hpp"
#include "serving/session.hpp"

namespace {

using plt::analysis::VerifyOptions;
using plt::analysis::VerifyReport;

void register_catalogue() {
  // GEMM, over the spec grammar: plain/permuted orders, serial, blocked
  // re-orders, dynamic schedule, an explicit thread grid, and a two-phase
  // barrier spec.
  plt::kernels::GemmConfig g;
  g.M = g.N = g.K = 64;
  g.bm = g.bn = g.bk = 16;
  g.m_blocking = {2};
  g.n_blocking = {2};
  const char* gemm_specs[] = {
      "BCa",  "aBC",   "abc",
      "Cab",  "Cba",   "CBa",
      "bBCca", "BCa @ schedule(dynamic,1)",
      "B{R:2}C{C:2}a", "aB|c",
  };
  for (const char* spec : gemm_specs) {
    g.loop_spec = spec;
    plt::kernels::GemmKernel kernel(g);
  }

  // Convolution (7-loop nest, padded strided input window).
  plt::kernels::ConvConfig c;
  c.N = 2;
  c.C = c.K = 32;
  c.H = c.W = 8;
  c.pad_h = c.pad_w = 1;
  c.bc = c.bk = 16;
  for (const char* spec : {"ACdebfg", "ACdebfg @ schedule(dynamic,1)"}) {
    c.loop_spec = spec;
    plt::kernels::ConvKernel kernel(c);
  }

  // Block-sparse SpMM (strided column-tile writes).
  plt::kernels::SpmmConfig s;
  s.M = s.N = s.K = 64;
  s.bm = s.bk = 8;
  s.bn = 32;
  plt::kernels::SpmmKernel spmm(s);

  // Serving sessions: construction warms every lane, registering the dl
  // layers' per-token-count plans with their access maps.
  plt::serving::MlpServeConfig mlp;
  mlp.features = 64;
  mlp.layers = 2;
  mlp.tokens = 32;
  plt::serving::make_mlp_session("lint-mlp", mlp, /*lanes=*/1, /*seed=*/7);

  plt::dl::BertConfig bert;
  bert.hidden = 64;
  bert.heads = 2;
  bert.intermediate = 128;
  bert.layers = 1;
  bert.seq_len = 32;
  plt::serving::make_bert_session("lint-bert", bert, /*lanes=*/1, /*seed=*/7);

  plt::dl::SparseFcConfig sfc;
  sfc.in_features = 64;
  sfc.out_features = 64;
  sfc.tokens = 32;
  plt::serving::make_sparse_fc_session("lint-sparse-fc", sfc, /*lanes=*/1, /*seed=*/7);

  plt::dl::LlmConfig llm;
  llm.hidden = 64;
  llm.heads = 2;
  llm.layers = 1;
  llm.ffn = 128;
  llm.vocab = 256;
  llm.max_seq = 64;
  plt::serving::make_llm_session("lint-llm", llm, /*prompt_len=*/8, /*gen_tokens=*/4,
                   /*lanes=*/1, /*seed=*/7);
}

int run_sweep(bool check_backend) {
  register_catalogue();

  VerifyOptions opts;
  opts.check_backend = check_backend;
  const std::vector<int>& teams = plt::analysis::default_team_sizes();

  std::printf("%-34s %5s %8s %4s", "spec", "loops", "iters", "maps");
  for (int n : teams) std::printf("  n=%-4d", n);
  std::printf("\n");

  int plans = 0, failures = 0;
  std::vector<std::string> details;
  plt::parlooper::plan_cache_for_each([&](const plt::parlooper::LoopNestPlan&
                                              plan) {
    ++plans;
    std::printf("%-34s %5d %8lld %4zu", plan.spec_string().c_str(),
                plan.num_logical(),
                static_cast<long long>(plan.total_iterations()),
                plan.access_maps().size());
    for (int n : teams) {
      const VerifyReport report = plt::analysis::verify_plan(plan, n, opts);
      if (report.ok()) {
        std::printf("  %-6s", report.backend_checked ? "OK" : "OK*");
      } else {
        ++failures;
        std::printf("  %-6s",
                    ("FAIL:" + std::to_string(report.issues.size())).c_str());
        details.push_back("spec '" + plan.spec_string() + "' " +
                          report.summary());
      }
    }
    std::printf("\n");
  });
  std::printf(
      "\n%d plan(s), %d failing cell(s)%s\n", plans, failures,
      check_backend && plt::parlooper::JitLoop::available()
          ? ""
          : "  (* = backend equivalence skipped)");
  for (const std::string& d : details) std::printf("%s\n", d.c_str());
  return failures == 0 && plans > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false, check_backend = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) self_test = true;
    else if (std::strcmp(argv[i], "--no-backend") == 0) check_backend = false;
    else {
      std::fprintf(stderr, "usage: %s [--self-test] [--no-backend]\n", argv[0]);
      return 2;
    }
  }
  if (self_test) {
    const std::string err = plt::analysis::mutation_self_test();
    if (!err.empty()) {
      std::fprintf(stderr, "mutation self-test FAILED: %s\n", err.c_str());
      return 1;
    }
    std::printf("mutation self-test passed: drop-tuple, duplicate-tuple and "
                "cross-barrier-swap all detected\n");
    return 0;
  }
  return run_sweep(check_backend);
}
